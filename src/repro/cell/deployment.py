"""Full-cell deployment wiring.

Reproduces the paper's testbed topology (Table 1): one RU on a fiber
fronthaul into a Tofino-class switch; two (or more) PHY servers and one
L2 server on 100 GbE; a core network and an application server beyond.

Two builders:

* :func:`build_slingshot_cell` — the protected deployment: Slingshot's
  fronthaul middlebox on the switch, PHY-side Orions on the PHY servers,
  an L2-side Orion on the L2 server, a hot-standby secondary fed null
  FAPI, and the in-switch failure detector armed on the primary.
* :func:`build_baseline_cell` — today's vRAN: a full hot-backup vRAN
  stack (its own L2 identity) on the second server; on primary failure
  the fronthaul is re-routed to the backup with the same in-switch
  detector (the most charitable baseline, as in §8.1), but UEs must
  re-establish with the new stack (~6.2 s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cell.config import CellConfig, UeProfile, default_bearers
from repro.core.commands import MigrateOnSlot, SLINGSHOT_CMD_BYTES
from repro.core.fh_middlebox import FronthaulMiddlebox, MiddleboxConfig
from repro.core.migration import ClusterConfig, MigrationController, PhyServer
from repro.core.orion import L2SideOrion, OrionConfig, PhySideOrion
from repro.corenet.core import CoreConfig, CoreNetwork
from repro.corenet.server import AppServer
from repro.fapi.channels import ShmChannel
from repro.fronthaul.air import AirInterface
from repro.fronthaul.ru import RadioUnit
from repro.l2.mac import L2Process, MacConfig
from repro.net.addresses import MacAddress, MacAllocator
from repro.net.link import Link
from repro.net.packet import EtherType, EthernetFrame
from repro.net.ptp import PtpClock
from repro.net.switch import Switch
from repro.phy.channel import UeChannelModel
from repro.phy.numerology import SlotClock
from repro.phy.process import PhyConfig, PhyProcess
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.ue.ue import UeConfig, UserEquipment


class ServerNic:
    """One server's NIC: demultiplexes ingress frames to local processes.

    Fronthaul (eCPRI) frames go to the PHY process; everything else
    (Orion datagrams, Slingshot notifications) goes to the Orion process.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.phy: Optional[PhyProcess] = None
        self.orion = None  # PhySideOrion or L2SideOrion

    def receive_frame(self, frame: EthernetFrame, ingress: Link) -> None:
        if frame.ethertype == EtherType.ECPRI:
            if self.phy is not None:
                self.phy.receive_frame(frame, ingress)
        elif self.orion is not None:
            self.orion.receive_frame(frame, ingress)


@dataclass
class PhyServerNode:
    """A PHY server: PHY process + PHY-side Orion + NIC."""

    phy_id: int
    phy: PhyProcess
    orion: PhySideOrion
    nic: ServerNic
    phy_mac: MacAddress
    orion_mac: MacAddress
    port: int


@dataclass
class _BaseCell:
    """Shared state of both deployment flavors."""

    config: CellConfig
    sim: Simulator
    trace: TraceRecorder
    rng: RngRegistry
    slot_clock: SlotClock
    switch: Switch
    middlebox: FronthaulMiddlebox
    air: AirInterface
    ru: RadioUnit
    phy_servers: List[PhyServerNode]
    core: CoreNetwork
    server: AppServer
    ues: Dict[int, UserEquipment]
    #: PTP-disciplined clocks of the slot-synchronized nodes (Table 1):
    #: the RU and every PHY server, each on its own registry stream.
    ptp_clocks: Dict[str, PtpClock] = field(default_factory=dict)

    @property
    def slot_ns(self) -> int:
        return self.slot_clock.slot_duration_ns

    def run_for(self, duration_ns: int) -> None:
        self.sim.run_for(duration_ns)

    def run_until(self, time_ns: int) -> None:
        self.sim.run_until(time_ns)

    def ue(self, ue_id: int) -> UserEquipment:
        return self.ues[ue_id]

    def kill_phy(self, phy_id: int) -> None:
        """SIGKILL a PHY process (the paper's §8.2 failure injection)."""
        self.phy_servers[phy_id].phy.crash(reason="SIGKILL")

    def kill_phy_at(self, phy_id: int, time_ns: int) -> None:
        self.sim.at(
            time_ns, self.kill_phy, phy_id, label=f"kill-phy{phy_id}"
        )


@dataclass
class SlingshotCell(_BaseCell):
    """A cell protected by Slingshot."""

    l2: L2Process = None  # type: ignore[assignment]
    l2_orion: L2SideOrion = None  # type: ignore[assignment]
    controller: MigrationController = None  # type: ignore[assignment]

    def planned_migration(self, cell_id: int = 0) -> int:
        return self.controller.planned_migration(cell_id)

    def live_upgrade(self, decoder_iterations: int, cell_id: int = 0) -> int:
        return self.controller.live_upgrade(cell_id, decoder_iterations)


@dataclass
class BaselineCell(_BaseCell):
    """A cell without Slingshot: full hot-backup vRAN stack."""

    primary_l2: L2Process = None  # type: ignore[assignment]
    backup_l2: L2Process = None  # type: ignore[assignment]
    _reroute_armed: bool = True

    def _on_failure(self, phy_id: int, detected_at: int) -> None:
        """Detector callback: re-route fronthaul to the backup vRAN."""
        if not self._reroute_armed or phy_id != 0:
            return
        self._reroute_armed = False
        boundary = self.slot_clock.slot_at(self.sim.now) + 1
        frame = EthernetFrame(
            src=MacAddress(0x02_00_00_00_0F_FF),
            dst=MacAddress(0x02_5A_5A_00_00_02),
            ethertype=EtherType.SLINGSHOT,
            payload=MigrateOnSlot(ru_id=self.ru.ru_id, dest_phy_id=1, slot=boundary),
            wire_bytes=SLINGSHOT_CMD_BYTES,
        )
        self.switch.inject(frame)
        # The backup vRAN now owns the cell: future attach procedures land
        # on its L2.
        self.core.bind_l2(self.backup_l2)
        self.trace.record(self.sim.now, "baseline.rerouted", boundary=boundary)


def _wire_phy_server(
    cell_cfg: CellConfig,
    sim: Simulator,
    trace: TraceRecorder,
    rng: RngRegistry,
    switch: Switch,
    middlebox: FronthaulMiddlebox,
    slot_clock: SlotClock,
    macs: MacAllocator,
    phy_id: int,
    decoder_iterations: int,
    vran_instance_id: int,
) -> PhyServerNode:
    """Stand up one PHY server: PHY + PHY-side Orion + NIC + switch port."""
    phy_mac = macs.allocate()
    orion_mac = macs.allocate()
    nic = ServerNic(name=f"phy-server{phy_id}")
    port = switch.attach(
        nic,
        bandwidth_bps=100e9,
        latency_ns=cell_cfg.edge_link_latency_ns,
        name=f"phy{phy_id}",
    )
    phy = PhyProcess(
        sim=sim,
        phy_id=phy_id,
        mac=phy_mac,
        slot_clock=slot_clock,
        tdd=cell_cfg.tdd,
        rng=rng.stream(f"phy{phy_id}"),
        config=PhyConfig(
            decoder_iterations=decoder_iterations,
            vran_instance_id=vran_instance_id,
            massive_mimo=cell_cfg.massive_mimo,
        ),
        uplink=port.ingress_link,  # type: ignore[attr-defined]
        trace=trace,
        name=f"phy{phy_id}",
    )
    orion = PhySideOrion(
        sim=sim, phy_id=phy_id, mac=orion_mac, slot_clock=slot_clock,
        trace=trace, name=f"orion-phy{phy_id}",
    )
    orion.uplink = port.ingress_link  # type: ignore[attr-defined]
    # SHM pair between the local Orion and PHY.
    shm_up = ShmChannel(sim, phy, name=f"shm-orion{phy_id}->phy")
    shm_down = ShmChannel(sim, orion, name=f"shm-phy{phy_id}->orion")
    orion.shm_to_phy = shm_up
    phy.fapi_tx = shm_down
    nic.phy = phy
    nic.orion = orion
    middlebox.register_phy(phy_id, phy_mac, port.number)
    middlebox.register_l2_host(orion_mac, port.number)
    return PhyServerNode(
        phy_id=phy_id,
        phy=phy,
        orion=orion,
        nic=nic,
        phy_mac=phy_mac,
        orion_mac=orion_mac,
        port=port.number,
    )


def _build_common(config: CellConfig, sim: Optional[Simulator] = None):
    """Create the shared substrate: sim, switch+middlebox, RU, air, UEs.

    With an external ``sim`` (the fleet composer's island-cell mode) the
    cell shares one event loop with its siblings but owns every other
    piece of state — switch, middlebox, RNG registry, trace — so its
    canonical trace is byte-identical to a standalone build of the same
    config (``config.tie_shuffle_seed`` then belongs to the shared sim's
    creator and is ignored here).
    """
    if sim is None:
        sim = Simulator(tie_shuffle_seed=config.tie_shuffle_seed)
    trace = TraceRecorder()
    rng = RngRegistry(seed=config.seed)
    slot_clock = SlotClock(config.numerology)
    macs = MacAllocator()
    switch = Switch(sim, name="edge-switch")
    middlebox = FronthaulMiddlebox(
        sim,
        config=MiddleboxConfig(),
        trace=trace,
        name="fh-mbox",
    )
    middlebox.install_on(switch)
    air = AirInterface()
    ru_mac = macs.allocate()
    ru = RadioUnit(
        sim=sim,
        ru_id=0,
        mac=ru_mac,
        virtual_phy_mac=middlebox.virtual_phy_mac,
        slot_clock=slot_clock,
        tdd=config.tdd,
        air=air,
        trace=trace,
        name="ru0",
    )
    ru_port = switch.attach(
        ru,
        bandwidth_bps=25e9,
        latency_ns=config.fronthaul_latency_ns,
        name="ru0",
    )
    ru.uplink = ru_port.ingress_link  # type: ignore[attr-defined]
    middlebox.register_ru(0, ru_mac, ru_port.number, initial_phy=0)
    return sim, trace, rng, slot_clock, macs, switch, middlebox, air, ru


def _build_ptp_clocks(rng: RngRegistry, num_phy_servers: int) -> Dict[str, PtpClock]:
    """Disciplined PTP clocks for the RU and PHY servers.

    Each clock's oscillator/servo noise comes from its own named registry
    stream, so the clock ensemble is deterministic per scenario seed.
    """
    clocks: Dict[str, PtpClock] = {"ru0": PtpClock(rng=rng.stream("ptp.ru0"))}
    for phy_id in range(num_phy_servers):
        clocks[f"phy{phy_id}"] = PtpClock(rng=rng.stream(f"ptp.phy{phy_id}"))
    return clocks


def _build_ues(
    config: CellConfig,
    sim: Simulator,
    trace: TraceRecorder,
    rng: RngRegistry,
    slot_clock: SlotClock,
    air: AirInterface,
    core: CoreNetwork,
) -> Dict[int, UserEquipment]:
    ues: Dict[int, UserEquipment] = {}
    for profile in config.ue_profiles:
        channel = UeChannelModel(
            rng=rng.stream(f"ue{profile.ue_id}.channel"),
            mean_snr_db=profile.mean_snr_db,
            shadow_sigma_db=profile.shadow_sigma_db,
            fade_probability=profile.fade_probability,
        )
        ue = UserEquipment(
            sim=sim,
            ue_id=profile.ue_id,
            slot_clock=slot_clock,
            tdd=config.tdd,
            air=air,
            channel=channel,
            rng=rng.stream(f"ue{profile.ue_id}.modem"),
            bearers=default_bearers(),
            config=UeConfig(rlf_timeout_ns=config.rlf_timeout_ns),
            trace=trace,
            name=profile.name,
        )
        core.admit_ue(ue, default_bearers(), snr_hint_db=profile.mean_snr_db)
        ues[profile.ue_id] = ue
    return ues


def build_slingshot_cell(
    config: Optional[CellConfig] = None,
    sim: Optional[Simulator] = None,
) -> SlingshotCell:
    """Build, wire, and start a Slingshot-protected cell.

    ``sim`` plugs the cell into an existing event loop (island-cell mode,
    used by :mod:`repro.fleet`); by default the cell gets its own.
    """
    config = config or CellConfig()
    (sim, trace, rng, slot_clock, macs, switch, middlebox, air, ru) = _build_common(
        config, sim=sim
    )
    # PHY servers. All belong to vRAN instance 1 (one L2).
    phy_servers: List[PhyServerNode] = []
    for phy_id in range(config.num_phy_servers):
        iterations = config.phy_decoder_iterations
        if phy_id == 1 and config.secondary_decoder_iterations is not None:
            iterations = config.secondary_decoder_iterations
        phy_servers.append(
            _wire_phy_server(
                config, sim, trace, rng, switch, middlebox, slot_clock, macs,
                phy_id, iterations, vran_instance_id=1,
            )
        )
    # L2 server: L2 process + L2-side Orion.
    l2_orion_mac = macs.allocate()
    l2_nic = ServerNic(name="l2-server")
    l2_port = switch.attach(
        l2_nic,
        bandwidth_bps=100e9,
        latency_ns=config.edge_link_latency_ns,
        name="l2",
    )
    l2 = L2Process(
        sim=sim,
        slot_clock=slot_clock,
        tdd=config.tdd,
        numerology=config.numerology,
        cell_id=0,
        ru_id=0,
        config=MacConfig(total_prbs=config.numerology.num_prbs),
        trace=trace,
        name="l2",
    )
    l2_orion = L2SideOrion(
        sim=sim, mac=l2_orion_mac, slot_clock=slot_clock, trace=trace
    )
    l2_orion.uplink = l2_port.ingress_link  # type: ignore[attr-defined]
    l2_nic.orion = l2_orion
    # SHM pair between L2 and its Orion.
    shm_to_orion = ShmChannel(sim, l2_orion, name="shm-l2->orion")
    shm_to_l2 = ShmChannel(sim, l2, name="shm-orion->l2")
    l2.set_fapi_channel(shm_to_orion)
    l2_orion.shm_to_l2 = shm_to_l2
    middlebox.register_l2_host(l2_orion_mac, l2_port.number)
    middlebox.set_notification_target(l2_orion_mac, l2_port.number)
    # Cluster config + assignment.
    cluster = ClusterConfig()
    for node in phy_servers:
        node.orion.l2_orion_mac = l2_orion_mac
        l2_orion.register_phy_server(node.phy_id, node.orion_mac)
        cluster.add_server(
            PhyServer(phy_id=node.phy_id, phy=node.phy, orion_mac=node.orion_mac)
        )
    secondary = 1 if config.num_phy_servers > 1 else None
    l2_orion.assign_cell(cell_id=0, ru_id=0, primary_phy=0, secondary_phy=secondary)
    controller = MigrationController(l2_orion, cluster, trace=trace)
    # Arm failure detection on the primary once it is emitting heartbeats
    # (arming before bring-up would trip on the not-yet-started PHY).
    sim.schedule(
        5 * slot_clock.slot_duration_ns,
        middlebox.detector.set_monitor,
        0,
        True,
        label="arm-detector",
    )
    # Core + app server + UEs.
    core = CoreNetwork(
        sim,
        config=CoreConfig(backhaul_latency_ns=config.backhaul_latency_ns),
        registry=rng,
        trace=trace,
    )
    core.bind_l2(l2)
    server = AppServer(sim, core, latency_to_core_ns=config.server_latency_ns)
    ues = _build_ues(config, sim, trace, rng, slot_clock, air, core)
    # Bring-up.
    ru.start()
    l2.start()
    cell = SlingshotCell(
        config=config,
        sim=sim,
        trace=trace,
        rng=rng,
        slot_clock=slot_clock,
        switch=switch,
        middlebox=middlebox,
        air=air,
        ru=ru,
        phy_servers=phy_servers,
        core=core,
        server=server,
        ues=ues,
        ptp_clocks=_build_ptp_clocks(rng, config.num_phy_servers),
        l2=l2,
        l2_orion=l2_orion,
        controller=controller,
    )
    return cell


def build_baseline_cell(config: Optional[CellConfig] = None) -> BaselineCell:
    """Build the no-Slingshot baseline: primary vRAN + hot-backup vRAN.

    Each vRAN stack (PHY + L2) runs on its own pair of processes with its
    own identity. The in-switch detector is still used to re-route the
    fronthaul quickly (the paper grants the baseline this much); the UEs
    nevertheless need a full re-establishment with the backup stack.
    """
    config = config or CellConfig()
    (sim, trace, rng, slot_clock, macs, switch, middlebox, air, ru) = _build_common(
        config
    )
    phy_servers: List[PhyServerNode] = []
    l2s: List[L2Process] = []
    # Two independent vRAN stacks: instance ids 1 and 2.
    for phy_id, instance in ((0, 1), (1, 2)):
        node = _wire_phy_server(
            config, sim, trace, rng, switch, middlebox, slot_clock, macs,
            phy_id, config.phy_decoder_iterations, vran_instance_id=instance,
        )
        phy_servers.append(node)
        l2 = L2Process(
            sim=sim,
            slot_clock=slot_clock,
            tdd=config.tdd,
            numerology=config.numerology,
            cell_id=0,
            ru_id=0,
            config=MacConfig(total_prbs=config.numerology.num_prbs),
            trace=trace,
            name=f"l2-vran{instance}",
        )
        # In the baseline, each L2 talks straight to its PHY over SHM
        # (tightly-coupled stack, no Orion indirection needed).
        shm_to_phy = ShmChannel(sim, node.phy, name=f"shm-l2{instance}->phy")
        shm_to_l2 = ShmChannel(sim, l2, name=f"shm-phy{instance}->l2")
        l2.set_fapi_channel(shm_to_phy)
        node.phy.fapi_tx = shm_to_l2
        l2s.append(l2)
    core = CoreNetwork(
        sim,
        config=CoreConfig(backhaul_latency_ns=config.backhaul_latency_ns),
        registry=rng,
        trace=trace,
    )
    core.bind_l2(l2s[0])
    server = AppServer(sim, core, latency_to_core_ns=config.server_latency_ns)
    ues = _build_ues(config, sim, trace, rng, slot_clock, air, core)
    ru.start()
    for l2 in l2s:
        l2.start()
    cell = BaselineCell(
        config=config,
        sim=sim,
        trace=trace,
        rng=rng,
        slot_clock=slot_clock,
        switch=switch,
        middlebox=middlebox,
        air=air,
        ru=ru,
        phy_servers=phy_servers,
        core=core,
        server=server,
        ues=ues,
        ptp_clocks=_build_ptp_clocks(rng, num_phy_servers=2),
        primary_l2=l2s[0],
        backup_l2=l2s[1],
    )
    # Arm detection on the primary (after bring-up) and route
    # notifications to the baseline's re-route hook.
    sim.schedule(
        5 * slot_clock.slot_duration_ns,
        middlebox.detector.set_monitor,
        0,
        True,
        label="arm-detector",
    )
    middlebox.detector.notify = cell._on_failure
    return cell
