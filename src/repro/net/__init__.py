"""Datacenter network substrate.

Models the edge-datacenter Ethernet fabric connecting the radio unit (RU),
the vRAN servers (PHY and L2), and the core-network uplink: frames, links
with latency and serialization delay, switch ports, and a programmable
(P4-style) switch pipeline in :mod:`repro.net.p4` on which Slingshot's
fronthaul middlebox is built.
"""

from repro.net.addresses import MacAddress, BROADCAST_MAC
from repro.net.packet import EtherType, EthernetFrame
from repro.net.link import Link, NetworkEndpoint
from repro.net.ptp import PtpClock, PtpConfig
from repro.net.switch import Switch, SwitchPort

__all__ = [
    "MacAddress",
    "BROADCAST_MAC",
    "EtherType",
    "EthernetFrame",
    "Link",
    "NetworkEndpoint",
    "PtpClock",
    "PtpConfig",
    "Switch",
    "SwitchPort",
]
