"""Point-to-point links with latency and serialization delay.

Each link direction models: serialization at the sender's line rate,
fixed propagation/processing latency, and FIFO ordering. The fronthaul
fiber, inter-server 100 GbE links, and the core-network uplink are all
instances with different parameters.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.net.packet import EthernetFrame
from repro.sim.engine import Simulator
from repro.sim.units import SECOND


class NetworkEndpoint(Protocol):
    """Anything that can receive an Ethernet frame from a link."""

    def receive_frame(self, frame: EthernetFrame, ingress: "Link") -> None:
        """Handle an arriving frame. ``ingress`` identifies the delivering link."""


class LinkImpairmentHook(Protocol):
    """Fault-injection hook invoked once per transmitted frame.

    Returns the deliveries to schedule as ``(arrival_time, frame)``
    pairs: an empty list drops the frame, two entries duplicate it, a
    shifted time reorders it, and a substituted frame corrupts it. The
    unimpaired behaviour is ``[(arrival, frame)]``.
    """

    def on_transmit(
        self, link: "Link", frame: EthernetFrame, arrival: int
    ) -> "list[tuple[int, EthernetFrame]]":
        """Decide the fate of one frame whose nominal arrival is ``arrival``."""


class Link:
    """One direction of a network link.

    Parameters
    ----------
    sim:
        The shared simulator.
    endpoint:
        Receiver of frames pushed into this link.
    bandwidth_bps:
        Line rate in bits/second; 0 disables serialization delay.
    latency_ns:
        Fixed one-way latency (propagation + PHY/MAC processing).
    name:
        Human-readable label for traces.
    """

    def __init__(
        self,
        sim: Simulator,
        endpoint: Optional[NetworkEndpoint] = None,
        bandwidth_bps: float = 100e9,
        latency_ns: int = 1_000,
        name: str = "link",
    ) -> None:
        self.sim = sim
        self.endpoint = endpoint
        self.bandwidth_bps = bandwidth_bps
        self.latency_ns = latency_ns
        self.name = name
        #: Time at which the sender's line becomes free again.
        self._line_free_at = 0
        #: Counters for accounting (used by overhead analyses).
        self.frames_sent = 0
        self.bytes_sent = 0
        #: Optional fault-injection hook (see :class:`LinkImpairmentHook`).
        self.impairment: Optional[LinkImpairmentHook] = None

    def connect(self, endpoint: NetworkEndpoint) -> None:
        """Attach the receiving endpoint (allows two-phase wiring)."""
        self.endpoint = endpoint

    def serialization_delay_ns(self, wire_bytes: int) -> int:
        """Time to clock ``wire_bytes`` onto the line at the link rate."""
        if self.bandwidth_bps <= 0:
            return 0
        return round(wire_bytes * 8 * SECOND / self.bandwidth_bps)

    def send(self, frame: EthernetFrame) -> int:
        """Transmit a frame; returns its scheduled arrival time.

        Serialization is FIFO: a frame cannot start until the previous one
        has fully left the sender.
        """
        if self.endpoint is None:
            raise RuntimeError(f"link {self.name} has no endpoint")
        start = max(self.sim.now, self._line_free_at)
        tx_done = start + self.serialization_delay_ns(frame.wire_bytes)
        self._line_free_at = tx_done
        arrival = tx_done + self.latency_ns
        self.frames_sent += 1
        self.bytes_sent += frame.wire_bytes
        if self.impairment is not None:
            for when, delivered in self.impairment.on_transmit(self, frame, arrival):
                self.sim.at(
                    when, self._deliver, delivered, label=f"{self.name}.deliver"
                )
            return arrival
        self.sim.at(arrival, self._deliver, frame, label=f"{self.name}.deliver")
        return arrival

    def _deliver(self, frame: EthernetFrame) -> None:
        assert self.endpoint is not None
        self.endpoint.receive_frame(frame, ingress=self)

    @property
    def utilization_window_end(self) -> int:
        """Time at which the line becomes idle (for tests/diagnostics)."""
        return self._line_free_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        gbps = self.bandwidth_bps / 1e9
        return f"<Link {self.name} {gbps:g}Gbps {self.latency_ns}ns>"


class DuplexLink:
    """Convenience pair of opposite-direction :class:`Link` instances."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = 100e9,
        latency_ns: int = 1_000,
        name: str = "duplex",
    ) -> None:
        self.forward = Link(sim, None, bandwidth_bps, latency_ns, f"{name}.fwd")
        self.reverse = Link(sim, None, bandwidth_bps, latency_ns, f"{name}.rev")

    def connect(self, a: NetworkEndpoint, b: NetworkEndpoint) -> None:
        """Wire ``a -> forward -> b`` and ``b -> reverse -> a``."""
        self.forward.connect(b)
        self.reverse.connect(a)
