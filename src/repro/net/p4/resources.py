"""Switch ASIC resource accounting (paper §8.6).

The paper reports the fraction of each Tofino pipeline resource used by
Slingshot's data plane for a 256-RU / 256-PHY-server configuration:
crossbar 5.2 %, ALU 10.4 %, gateway 14.1 %, SRAM 5.3 %, hash bits 9.5 % —
and notes that scaling the RU/PHY count grows only SRAM usage.

This module provides an analytic model: per-resource totals for a
Tofino-class pipeline and per-component costs for Slingshot's tables,
registers, and detector logic, calibrated so the 256-RU configuration
reproduces the paper's percentages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


#: Total resource budgets for one Tofino-class pipeline (abstract units for
#: combinational resources; bits for SRAM/hash). These are model totals, not
#: vendor data: the per-component costs below are expressed against them.
PIPELINE_TOTALS: Dict[str, float] = {
    "crossbar": 1_536.0,        # input crossbar bytes across stages
    "alu": 48.0,                # stateful/stateless ALUs
    "gateway": 192.0,           # gateway (conditional) units
    "sram_bits": 120e6,         # ~15 MB SRAM
    "hash_bits": 4_992.0,       # hash distribution bits
}

#: Fixed cost of the Slingshot program independent of the RU count: header
#: parsing (eCPRI + O-RAN section headers + Slingshot command packets),
#: timer-packet handling, the migrate_on_slot comparison logic, and the
#: failure-notification reformatting.
_FIXED_COSTS: Dict[str, float] = {
    "crossbar": 78.0,
    "alu": 4.95,
    "gateway": 27.0,
    "sram_bits": 1.2e6,
    "hash_bits": 470.0,
}

#: Per-RU/PHY-pair marginal costs. Only SRAM grows meaningfully with scale
#: (the ID/address directories and per-RU/PHY register cells); match
#: crossbars, ALUs, gateways, and hash bits are allocated per-program,
#: not per-entry, so their costs are (almost entirely) fixed.
_PER_ENTRY_COSTS: Dict[str, float] = {
    "crossbar": 0.008,
    "alu": 0.0002,
    "gateway": 0.0008,
    "sram_bits": 20_150.0,
    "hash_bits": 0.015,
}


@dataclass(frozen=True)
class ResourceUsage:
    """Resource usage of the Slingshot pipeline, absolute and fractional."""

    absolute: Dict[str, float] = field(default_factory=dict)
    fraction: Dict[str, float] = field(default_factory=dict)

    def percent(self, resource: str) -> float:
        """Usage of one resource as a percentage of the pipeline total."""
        return 100.0 * self.fraction[resource]


class PipelineResourceModel:
    """Analytic resource model for Slingshot's switch data plane."""

    def __init__(self, totals: Dict[str, float] = None) -> None:
        self.totals = dict(PIPELINE_TOTALS if totals is None else totals)

    def usage(self, num_rus: int, num_phys: int) -> ResourceUsage:
        """Resource usage for a deployment of ``num_rus`` RUs / ``num_phys`` PHYs.

        Directory tables and register arrays are sized for
        ``max(num_rus, num_phys)`` entries each.
        """
        if num_rus <= 0 or num_phys <= 0:
            raise ValueError("deployment must have at least one RU and one PHY")
        entries = max(num_rus, num_phys)
        absolute: Dict[str, float] = {}
        fraction: Dict[str, float] = {}
        for resource, total in self.totals.items():
            used = _FIXED_COSTS[resource] + entries * _PER_ENTRY_COSTS[resource]
            absolute[resource] = used
            fraction[resource] = used / total
        return ResourceUsage(absolute=absolute, fraction=fraction)

    def max_supported_entries(self, resource: str = "sram_bits") -> int:
        """How many RU/PHY pairs fit before ``resource`` is exhausted."""
        budget = self.totals[resource] - _FIXED_COSTS[resource]
        per_entry = _PER_ENTRY_COSTS[resource]
        if per_entry <= 0:
            return 1 << 30
        return int(budget // per_entry)
