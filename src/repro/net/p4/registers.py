"""P4 register arrays.

Registers are the only switch state writable from the data plane at line
rate, which is what lets Slingshot (a) flip the RU-to-PHY mapping exactly
when the first fronthaul packet of the migration slot arrives and (b) run
the failure-detector counters at per-packet granularity.

The paper's indirection trick (§5.1): rather than a MAC-to-MAC hash table
(which data planes cannot update), operators assign small integer RU/PHY
IDs at installation time, and the RU-to-PHY mapping is a plain register
array indexed by RU ID — collision-free by construction.
"""

from __future__ import annotations

from typing import List


class RegisterArray:
    """A fixed-size array of unsigned integer registers."""

    def __init__(self, name: str, size: int, width_bits: int = 32, initial: int = 0) -> None:
        if size <= 0:
            raise ValueError("register array size must be positive")
        self.name = name
        self.size = size
        self.width_bits = width_bits
        self._mask = (1 << width_bits) - 1
        self._cells: List[int] = [initial & self._mask] * size
        self.reads = 0
        self.writes = 0

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"{self.name}[{index}] out of range (size {self.size})")

    def read(self, index: int) -> int:
        """Data-plane read."""
        self._check(index)
        self.reads += 1
        return self._cells[index]

    def write(self, index: int, value: int) -> None:
        """Data-plane write; values wrap at the register width."""
        self._check(index)
        self.writes += 1
        self._cells[index] = value & self._mask

    def increment(self, index: int, amount: int = 1) -> int:
        """Saturating increment (the detector counters saturate, not wrap)."""
        self._check(index)
        self.writes += 1
        value = min(self._cells[index] + amount, self._mask)
        self._cells[index] = value
        return value

    def reset_all(self, value: int = 0) -> None:
        """Control-plane bulk reset."""
        self._cells = [value & self._mask] * self.size

    @property
    def sram_bits(self) -> int:
        """SRAM footprint of the array."""
        return self.size * self.width_bits

    def snapshot(self) -> List[int]:
        """Copy of all cells (control-plane sync read, for tests)."""
        return list(self._cells)

    def __len__(self) -> int:
        return self.size
