"""Tofino-style built-in packet generator.

Programmable switches lack timers in the data plane; the paper (§5.2.2)
emulates timeout events by configuring the switch's packet generator to
inject ``n`` packets per timeout period ``T`` into the pipeline, where
they increment per-PHY registers. With the paper's defaults (T = 450 us,
n = 50) the detector's tick precision is T/n = 9 us at a negligible 50 k
packets/second of internal traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess


@dataclass(frozen=True)
class TimerPacket:
    """Payload of a generator-injected timer packet."""

    tick: int


class PacketGenerator(PeriodicProcess):
    """Injects timer packets into the switch pipeline at a fixed rate.

    Parameters
    ----------
    sim:
        Shared simulator.
    inject:
        Callback receiving each :class:`TimerPacket`; the fronthaul
        middlebox wires this to the switch's pipeline ingress.
    period_ns:
        Interval between injected packets (= T / n).
    """

    def __init__(
        self,
        sim: Simulator,
        inject: Callable[[TimerPacket], None],
        period_ns: int,
        name: str = "pktgen",
    ) -> None:
        super().__init__(sim, name, period=period_ns)
        self._inject = inject
        self.packets_injected = 0

    @classmethod
    def for_timeout(
        cls,
        sim: Simulator,
        inject: Callable[[TimerPacket], None],
        timeout_ns: int,
        ticks_per_timeout: int,
        name: str = "pktgen",
    ) -> "PacketGenerator":
        """Configure the generator for an n-ticks-per-timeout detector."""
        if ticks_per_timeout <= 0:
            raise ValueError("ticks_per_timeout must be positive")
        period = max(1, timeout_ns // ticks_per_timeout)
        return cls(sim, inject, period, name=name)

    @property
    def rate_pps(self) -> float:
        """Injection rate in packets per second."""
        return 1e9 / self.period

    def on_tick(self, tick: int) -> None:
        self.packets_injected += 1
        self._inject(TimerPacket(tick=tick))
