"""Programmable-switch (P4/Tofino-style) data-plane model.

Slingshot's fronthaul middlebox and failure detector are written as a P4
program plus a Python control plane (paper §7). This package models the
primitives that program uses:

* :class:`~repro.net.p4.tables.MatchActionTable` — exact-match tables
  installed from the control plane (with the control plane's tens-of-ms
  rule-update latency, which is *why* migration must happen in the data
  plane).
* :class:`~repro.net.p4.registers.RegisterArray` — data-plane-updatable
  state (the RU-to-PHY mapping, migration request store, and
  failure-detector counters).
* :class:`~repro.net.p4.packetgen.PacketGenerator` — Tofino's built-in
  periodic packet generator, used to emulate timer ticks.
* :mod:`~repro.net.p4.resources` — switch ASIC resource accounting for the
  §8.6 resource-usage table.
"""

from repro.net.p4.tables import MatchActionTable, TableEntry
from repro.net.p4.registers import RegisterArray
from repro.net.p4.packetgen import PacketGenerator
from repro.net.p4.control import ControlPlane
from repro.net.p4.resources import PipelineResourceModel, ResourceUsage

__all__ = [
    "MatchActionTable",
    "TableEntry",
    "RegisterArray",
    "PacketGenerator",
    "ControlPlane",
    "PipelineResourceModel",
    "ResourceUsage",
]
