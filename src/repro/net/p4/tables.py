"""Exact-match match-action tables.

These model P4 tables that can only be written from the switch control
plane. Lookups (data-plane reads) are instantaneous in simulated time;
writes performed through :class:`~repro.net.p4.control.ControlPlane` incur
the control plane's rule-update latency, matching the paper's measurement
of ~29 ms at the 99.9th percentile — the reason Slingshot's migration
trigger lives in the data plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional


@dataclass
class TableEntry:
    """One installed rule: an exact-match key mapped to an action value."""

    key: Hashable
    value: Any
    installed_at: int = 0


class MatchActionTable:
    """An exact-match table with a fixed capacity.

    Capacity models the ASIC's SRAM allocation for the table; exceeding it
    raises, mirroring a compile-time resource failure.
    """

    def __init__(self, name: str, capacity: int, key_bits: int, value_bits: int) -> None:
        self.name = name
        self.capacity = capacity
        self.key_bits = key_bits
        self.value_bits = value_bits
        self._entries: Dict[Hashable, TableEntry] = {}
        self.lookups = 0
        self.hits = 0

    def install(self, key: Hashable, value: Any, now: int = 0) -> None:
        """Insert or overwrite a rule (control-plane operation)."""
        if key not in self._entries and len(self._entries) >= self.capacity:
            raise RuntimeError(
                f"table {self.name} full ({self.capacity} entries)"
            )
        self._entries[key] = TableEntry(key=key, value=value, installed_at=now)

    def remove(self, key: Hashable) -> None:
        """Delete a rule; missing keys are ignored."""
        self._entries.pop(key, None)

    def lookup(self, key: Hashable) -> Optional[Any]:
        """Data-plane exact-match lookup; returns the action value or None."""
        self.lookups += 1
        entry = self._entries.get(key)
        if entry is None:
            return None
        self.hits += 1
        return entry.value

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def sram_bits(self) -> int:
        """SRAM footprint of the full table allocation."""
        return self.capacity * (self.key_bits + self.value_bits)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Table {self.name} {len(self._entries)}/{self.capacity}>"
