"""Switch control plane (Barefoot-Runtime-style API model).

The control plane installs table rules and resets registers. Its defining
property for Slingshot is *latency*: a rule update takes tens of
milliseconds (the paper measured 29 ms at p99.9 in their testbed) and
cannot be aligned to a TTI boundary — which is why the migration trigger
(`migrate_on_slot`) executes in the data plane instead.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional

import numpy as np

from repro.net.p4.tables import MatchActionTable
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.units import ms_to_ns


class ControlPlane:
    """Asynchronous, slow control-plane writer for switch state.

    Update latency is drawn per operation from a lognormal distribution
    calibrated so the 99.9th percentile lands near the paper's measured
    29 ms.
    """

    #: Lognormal parameters: median ~12 ms, p99.9 ~29 ms.
    _MU = np.log(12.0)
    _SIGMA = 0.285

    def __init__(
        self,
        sim: Simulator,
        rng: Optional[np.random.Generator] = None,
        name: str = "switch-ctl",
    ) -> None:
        self.sim = sim
        self.name = name
        self.rng = (
            rng if rng is not None else RngRegistry(seed=0).stream(f"p4.{name}")
        )
        self.updates_issued = 0

    def sample_update_latency_ns(self) -> int:
        """Draw one rule-update latency."""
        latency_ms = float(self.rng.lognormal(self._MU, self._SIGMA))
        return ms_to_ns(latency_ms)

    def install_rule(
        self,
        table: MatchActionTable,
        key: Hashable,
        value: Any,
        on_done: Optional[Callable[[], None]] = None,
    ) -> int:
        """Install a rule after the control-plane latency; returns apply time."""
        self.updates_issued += 1
        delay = self.sample_update_latency_ns()

        def _apply() -> None:
            table.install(key, value, now=self.sim.now)
            if on_done is not None:
                on_done()

        self.sim.schedule(delay, _apply, label=f"{self.name}.install")
        return self.sim.now + delay

    def install_rule_sync(self, table: MatchActionTable, key: Hashable, value: Any) -> None:
        """Install a rule immediately (used at deployment/bring-up time).

        Bring-up happens long before any realtime traffic flows, so the
        control-plane latency is irrelevant there.
        """
        table.install(key, value, now=self.sim.now)
