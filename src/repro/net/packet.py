"""Ethernet frames.

Frames carry a typed Python payload plus an explicit wire size. The wire
size — not the in-memory representation — drives serialization delay and
bandwidth accounting on links, so scaled-down payloads (e.g. reduced IQ
sample counts) can still model full-rate fronthaul traffic by declaring
their real on-the-wire size.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any

from repro.net.addresses import MacAddress

#: Minimum legal Ethernet frame size (64 bytes incl. FCS).
MIN_FRAME_BYTES = 64

#: Standard maximum frame size used for fragmentation decisions.
MTU_BYTES = 1500


class EtherType(enum.IntEnum):
    """EtherType values for the traffic classes in the simulated fabric."""

    #: eCPRI — O-RAN split 7.2x fronthaul (real value from the eCPRI spec).
    ECPRI = 0xAEFE
    #: IPv4 — app/core traffic and Orion's UDP FAPI transport.
    IPV4 = 0x0800
    #: Slingshot control packets (migrate_on_slot, failure notifications,
    #: switch timer/packet-generator packets). A locally-chosen value.
    SLINGSHOT = 0x88B5
    #: Precision Time Protocol (modeled only for completeness).
    PTP = 0x88F7


_frame_ids = itertools.count(1)


class EthernetFrame:
    """A simulated Ethernet frame.

    ``payload`` is any Python object (typed messages defined by each
    protocol module); ``wire_bytes`` is the frame's on-the-wire size used
    for link timing.

    Frames are identity objects created once per hop on the simulation's
    hottest allocation path, so this is a ``__slots__`` class rather than
    a dataclass: no per-instance ``__dict__``, no generated ``__eq__``
    machinery, one C-level attribute store per field.
    """

    __slots__ = ("src", "dst", "ethertype", "payload", "wire_bytes", "frame_id")

    def __init__(
        self,
        src: MacAddress,
        dst: MacAddress,
        ethertype: EtherType,
        payload: Any,
        wire_bytes: int = MIN_FRAME_BYTES,
    ) -> None:
        self.src = src
        self.dst = dst
        self.ethertype = ethertype
        self.payload = payload
        self.wire_bytes = wire_bytes if wire_bytes >= MIN_FRAME_BYTES else MIN_FRAME_BYTES
        self.frame_id = next(_frame_ids)

    def copy_to(self, dst: MacAddress) -> "EthernetFrame":
        """Clone the frame with a rewritten destination (switch forwarding)."""
        return EthernetFrame(
            src=self.src,
            dst=dst,
            ethertype=self.ethertype,
            payload=self.payload,
            wire_bytes=self.wire_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Frame #{self.frame_id} {self.src}->{self.dst} "
            f"{self.ethertype.name} {self.wire_bytes}B>"
        )
