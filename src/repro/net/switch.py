"""Edge-datacenter switch.

A :class:`Switch` owns numbered ports, each of which may be cabled to a
node via a pair of :class:`~repro.net.link.Link` objects. Forwarding is
delegated to a pluggable pipeline — the default is plain static L2
forwarding; Slingshot installs the P4-modeled fronthaul-middlebox pipeline
from :mod:`repro.core.fh_middlebox` instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol

from repro.net.addresses import BROADCAST_MAC, MacAddress
from repro.net.link import Link, NetworkEndpoint
from repro.net.packet import EthernetFrame
from repro.sim.engine import Simulator
from repro.sim.process import Process


class ForwardingDecision:
    """What the pipeline wants done with one ingress frame.

    ``out_ports`` lists egress ports; an empty list drops the frame.
    ``frame`` may be a rewritten copy (e.g. virtual-address translation).
    ``extra`` carries additional frames to emit (e.g. failure notifications
    or mirrored packets), as (port, frame) pairs.
    """

    __slots__ = ("out_ports", "frame", "extra")

    def __init__(
        self,
        out_ports: List[int],
        frame: EthernetFrame,
        extra: Optional[List["tuple[int, EthernetFrame]"]] = None,
    ) -> None:
        self.out_ports = out_ports
        self.frame = frame
        self.extra = extra or []

    @classmethod
    def drop(cls, frame: EthernetFrame) -> "ForwardingDecision":
        return cls([], frame)


class SwitchPipeline(Protocol):
    """Packet-processing program installed on a switch."""

    def process(
        self, frame: EthernetFrame, in_port: int, switch: "Switch"
    ) -> ForwardingDecision:
        """Decide forwarding for one ingress frame."""


class StaticL2Pipeline:
    """Default pipeline: static MAC table plus broadcast flooding."""

    def __init__(self) -> None:
        self.mac_table: Dict[MacAddress, int] = {}

    def learn(self, mac: MacAddress, port: int) -> None:
        """Install a static MAC-to-port entry."""
        self.mac_table[mac] = port

    def process(
        self, frame: EthernetFrame, in_port: int, switch: "Switch"
    ) -> ForwardingDecision:
        if frame.dst == BROADCAST_MAC:
            out = [p for p in switch.port_numbers() if p != in_port]
            return ForwardingDecision(out, frame)
        port = self.mac_table.get(frame.dst)
        if port is None or port == in_port:
            return ForwardingDecision.drop(frame)
        return ForwardingDecision([port], frame)


class SwitchPort(NetworkEndpoint):
    """One switch port; receives frames from its ingress link."""

    def __init__(self, switch: "Switch", number: int) -> None:
        self.switch = switch
        self.number = number
        #: Egress link toward the attached node (None until cabled).
        self.egress: Optional[Link] = None
        self.frames_in = 0
        self.frames_out = 0

    def receive_frame(self, frame: EthernetFrame, ingress: Link) -> None:
        self.frames_in += 1
        self.switch.ingress(frame, self.number)

    def transmit(self, frame: EthernetFrame) -> None:
        """Send a frame out of this port toward the attached node."""
        if self.egress is None:
            return
        self.frames_out += 1
        self.egress.send(frame)


class Switch(Process):
    """A store-and-forward switch with a pluggable processing pipeline.

    ``pipeline_latency_ns`` models the data-plane forwarding latency
    (hundreds of nanoseconds on Tofino-class hardware).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "switch",
        pipeline: Optional[SwitchPipeline] = None,
        pipeline_latency_ns: int = 400,
    ) -> None:
        super().__init__(sim, name)
        self.pipeline: SwitchPipeline = pipeline or StaticL2Pipeline()
        self.pipeline_latency_ns = pipeline_latency_ns
        self._ports: Dict[int, SwitchPort] = {}
        self.frames_processed = 0
        self.frames_dropped = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_port(self, number: Optional[int] = None) -> SwitchPort:
        """Create a port; auto-numbered if ``number`` is None."""
        if number is None:
            number = max(self._ports, default=-1) + 1
        if number in self._ports:
            raise ValueError(f"port {number} already exists on {self.name}")
        port = SwitchPort(self, number)
        self._ports[number] = port
        return port

    def attach(
        self,
        endpoint: NetworkEndpoint,
        bandwidth_bps: float = 100e9,
        latency_ns: int = 1_000,
        port: Optional[int] = None,
        name: str = "",
    ) -> SwitchPort:
        """Cable a node to a (possibly new) port with a duplex link pair.

        Returns the switch port. The node should send frames into
        ``port.ingress_link`` (exposed as the returned value's
        ``ingress_link`` attribute).
        """
        sw_port = self.add_port(port)
        label = name or getattr(endpoint, "name", f"node{sw_port.number}")
        # Node -> switch direction.
        up = Link(self.sim, sw_port, bandwidth_bps, latency_ns, f"{label}->{self.name}")
        # Switch -> node direction.
        down = Link(self.sim, endpoint, bandwidth_bps, latency_ns, f"{self.name}->{label}")
        sw_port.egress = down
        # Expose the uplink so the node can transmit.
        sw_port.ingress_link = up  # type: ignore[attr-defined]
        return sw_port

    def port(self, number: int) -> SwitchPort:
        return self._ports[number]

    def port_numbers(self) -> List[int]:
        return sorted(self._ports)

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def ingress(self, frame: EthernetFrame, in_port: int) -> None:
        """Run the pipeline on an ingress frame and forward the result."""
        self.frames_processed += 1
        decision = self.pipeline.process(frame, in_port, self)
        if not decision.out_ports and not decision.extra:
            self.frames_dropped += 1
            return
        self.sim.schedule(
            self.pipeline_latency_ns,
            self._egress,
            decision,
            label=f"{self.name}.egress",
        )

    def inject(self, frame: EthernetFrame, in_port: int = -1) -> None:
        """Inject a frame into the pipeline as if received (packet generator)."""
        self.ingress(frame, in_port)

    def _egress(self, decision: ForwardingDecision) -> None:
        for number in decision.out_ports:
            port = self._ports.get(number)
            if port is not None:
                port.transmit(decision.frame)
        for number, frame in decision.extra:
            port = self._ports.get(number)
            if port is not None:
                port.transmit(frame)
