"""MAC addresses.

Fronthaul packets in O-RAN split 7.2x deployments are raw Ethernet frames
addressed by MAC; Slingshot's virtual-PHY-address scheme (§5.1 of the
paper) rewrites destination MACs in the switch data plane. A tiny value
type keeps addresses hashable, comparable, and printable.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache


@lru_cache(maxsize=4096)
def _format_mac(value: int) -> str:
    """``aa:bb:cc:dd:ee:ff`` rendering, memoized per 48-bit value.

    A deployment has a small, fixed set of addresses but formats them on
    every trace/repr touch; the cache turns repeat formatting into a dict
    hit. (Behavior-invisible: pure function of ``value``.)
    """
    octets = [(value >> shift) & 0xFF for shift in range(40, -8, -8)]
    return ":".join(f"{octet:02x}" for octet in octets)


@dataclass(frozen=True, order=True)
class MacAddress:
    """A 48-bit Ethernet MAC address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 48):
            raise ValueError(f"MAC address out of range: {self.value:#x}")

    @classmethod
    def from_string(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` notation."""
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"malformed MAC address: {text!r}")
        value = 0
        for part in parts:
            octet = int(part, 16)
            if not 0 <= octet <= 0xFF:
                raise ValueError(f"malformed MAC octet in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        return _format_mac(self.value)

    def __int__(self) -> int:
        return self.value


#: The all-ones broadcast address.
BROADCAST_MAC = MacAddress((1 << 48) - 1)


class MacAllocator:
    """Hands out unique unicast MAC addresses for simulated nodes."""

    def __init__(self, oui: int = 0x02_00_00) -> None:
        # 0x02 prefix = locally administered, unicast.
        self._base = oui << 24
        self._next = 1

    def allocate(self) -> MacAddress:
        """Return a fresh unique address."""
        mac = MacAddress(self._base | self._next)
        self._next += 1
        return mac
