"""Precision Time Protocol (PTP) clock model.

The testbed's RU and PHY servers are slot-synchronized by a PTP
grandmaster (Table 1); the switch *data plane* is not time-synchronized
at all (§5.1) — which is exactly why Slingshot triggers migration on the
frame/subframe/slot fields carried in fronthaul packets rather than on
any switch-local notion of time.

This module models disciplined and undisciplined clocks so that claim is
checkable: a PTP-disciplined clock stays within sub-microsecond offset
of true time, while a free-running oscillator drifts by parts-per-million
— milliseconds per hour, hopeless against 500 µs slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.rng import RngRegistry
from repro.sim.units import SECOND, US


@dataclass
class PtpConfig:
    """Servo and oscillator characteristics."""

    #: Sync message interval (PTP default: 1 s; telecom profiles faster).
    sync_interval_ns: int = SECOND // 16
    #: Residual offset after servo correction (one-sigma).
    residual_sigma_ns: float = 80.0
    #: Free-running oscillator drift, in parts per million.
    drift_ppm: float = 8.0


class PtpClock:
    """A local clock, optionally disciplined by PTP.

    ``read(true_time)`` returns this clock's view of the given true
    simulated time. Undisciplined clocks accumulate drift from their
    epoch; disciplined clocks are re-aligned every sync interval with a
    small residual error.
    """

    def __init__(
        self,
        config: Optional[PtpConfig] = None,
        disciplined: bool = True,
        rng: Optional[np.random.Generator] = None,
        epoch_ns: int = 0,
    ) -> None:
        self.config = config or PtpConfig()
        self.disciplined = disciplined
        self.rng = rng if rng is not None else RngRegistry(seed=0).stream("ptp")
        self.epoch_ns = epoch_ns
        #: Offset at the last discipline point.
        self._base_offset_ns = 0.0
        self._last_sync_ns = epoch_ns
        #: This oscillator's actual drift (fixed per instance).
        self._drift = float(self.rng.normal(0.0, self.config.drift_ppm / 3.0))
        self.syncs_applied = 0

    @property
    def drift_ppm(self) -> float:
        return self._drift

    def _sync_if_due(self, true_time: int) -> None:
        if not self.disciplined:
            return
        while true_time - self._last_sync_ns >= self.config.sync_interval_ns:
            self._last_sync_ns += self.config.sync_interval_ns
            self._base_offset_ns = float(
                self.rng.normal(0.0, self.config.residual_sigma_ns)
            )
            self.syncs_applied += 1

    # --- Fault injection --------------------------------------------------
    def apply_step(self, true_time: int, step_ns: float) -> None:
        """Inject a phase step (e.g. a bad grandmaster update). The servo
        pulls the offset back at the next sync; until then every reading
        is shifted by ``step_ns``."""
        self._sync_if_due(true_time)
        self._base_offset_ns += float(step_ns)

    def set_drift_ppm(self, true_time: int, drift_ppm: float) -> None:
        """Override the oscillator's drift rate from ``true_time`` on
        (e.g. thermal runaway). Accrued offset up to now is preserved."""
        self._sync_if_due(true_time)
        accrued = self.offset_ns(true_time)
        self._base_offset_ns = accrued
        self._last_sync_ns = true_time
        if not self.disciplined:
            self.epoch_ns = true_time
        self._drift = float(drift_ppm)

    def set_disciplined(self, true_time: int, disciplined: bool) -> None:
        """Enter or leave holdover (PTP sync lost / restored)."""
        if disciplined == self.disciplined:
            return
        accrued = self.offset_ns(true_time)
        self._base_offset_ns = accrued
        # Re-anchor both references so no drift double-counts and the
        # servo does not replay a burst of missed sync intervals.
        self._last_sync_ns = true_time
        self.epoch_ns = true_time
        self.disciplined = disciplined

    def offset_ns(self, true_time: int) -> float:
        """Current clock error: local reading minus true time."""
        self._sync_if_due(true_time)
        elapsed = true_time - (self._last_sync_ns if self.disciplined else self.epoch_ns)
        return self._base_offset_ns + elapsed * self._drift / 1e6

    def read(self, true_time: int) -> int:
        """This clock's reading at a true simulated instant."""
        return true_time + round(self.offset_ns(true_time))

    def slot_boundary_error_ns(self, true_time: int, slot_ns: int = 500_000) -> float:
        """How far this clock's idea of 'the slot boundary' lands from
        the true boundary — the figure of merit for migration triggering."""
        return abs(self.offset_ns(true_time)) % slot_ns
