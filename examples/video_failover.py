#!/usr/bin/env python3
"""Fig 8 scenario: video conferencing through a PHY failure.

Streams a 500 kb/s talking-head video to a UE and kills the primary PHY
mid-call, under three deployments:

  1. no failure              (control)
  2. failure without Slingshot — hot backup vRAN + fronthaul re-route,
     but the UE must re-establish with the new stack (~6.2 s outage)
  3. failure with Slingshot   — transparent PHY migration, zero outage

Prints the received-bitrate time series for each (the paper's QoE proxy).

Run:  python examples/video_failover.py [--duration 12] [--failure-at 2.6]
"""

import argparse

from repro.experiments import fig8_video


def render_series(label: str, series, failure_at_s: float) -> None:
    print(f"\n{label}")
    bar_scale = 520.0
    for time_s, kbps in series:
        bar = "#" * int(40 * min(kbps, bar_scale) / bar_scale)
        marker = "  <- failure" if abs(time_s - failure_at_s) < 0.25 else ""
        print(f"  {time_s:5.1f}s {kbps:6.0f} kbps |{bar}{marker}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=12.0)
    parser.add_argument("--failure-at", type=float, default=2.6)
    parser.add_argument("--bitrate-kbps", type=float, default=500.0)
    args = parser.parse_args()

    print(f"Streaming {args.bitrate_kbps:.0f} kb/s video for "
          f"{args.duration:.0f} s, failure at t={args.failure_at:.1f} s "
          f"(three scenarios; this takes a few minutes)...")
    result = fig8_video.run(
        duration_s=args.duration,
        failure_at_s=args.failure_at,
        bitrate_bps=args.bitrate_kbps * 1e3,
    )
    print("\n" + fig8_video.summarize(result))
    for scenario in (
        result.no_failure,
        result.failure_without_slingshot,
        result.failure_with_slingshot,
    ):
        render_series(scenario.label, scenario.bitrate_kbps, args.failure_at)


if __name__ == "__main__":
    main()
