#!/usr/bin/env python3
"""A tour of the in-switch failure detector (§5.2).

Demonstrates, on a live cell:
  * the healthy heartbeat stream (max inter-packet gap vs the timeout),
  * detection latency across repeated SIGKILLs at random slot phases,
  * the false-positive / detection-latency trade-off when sweeping the
    timeout T around the healthy-gap envelope.

Run:  python examples/failure_detector_tour.py
"""

from repro.experiments import ablations, sec52_detector, sec86_switch


def main() -> None:
    print("Measuring the healthy heartbeat envelope (idle + busy)...")
    switch_result = sec86_switch.run(gap_duration_s=2.0)
    print(f"  max healthy inter-packet gap: idle "
          f"{switch_result.max_gap_idle_us:.0f} us, busy "
          f"{switch_result.max_gap_busy_us:.0f} us "
          f"(paper measured 393 us; timeout set to 450 us)")

    print("\nKilling the primary at random slot phases...")
    detector_result = sec52_detector.run(trials=5, healthy_seconds=1.0)
    print(f"  detection latency: median {detector_result.median_us():.0f} us, "
          f"max {detector_result.max_us():.0f} us; "
          f"false positives in healthy run: {detector_result.false_positives}")

    print("\nSweeping the timeout T (the design trade-off):")
    print("  T(us)   false positives   detection latency (us)")
    for point in ablations.detector_timeout_sweep():
        latency = (
            f"{point.detection_latency_us:.0f}"
            if point.detection_latency_us is not None
            else "-"
        )
        print(f"  {point.timeout_us:6.0f}  {point.false_positives:15d}   {latency:>10s}")
    print(
        "\nBelow the ~390 us healthy gap, the detector false-positives on\n"
        "ordinary jitter; far above it, failures linger for extra TTIs.\n"
        "450 us sits just past the envelope — the paper's choice."
    )


if __name__ == "__main__":
    main()
