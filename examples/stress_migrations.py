#!/usr/bin/env python3
"""Table 2 scenario: stress-testing PHY-state discarding.

Migrates PHY processing back and forth between the two servers at
extreme rates while an uplink UDP flow runs, demonstrating the paper's
central claim (§4): discarding inter-TTI PHY soft state (HARQ buffers,
SNR filters) at every migration never breaks connectivity — downtime
stays under the 10 ms target even at tens of migrations per second,
despite interrupting in-flight HARQ sequences.

Run:  python examples/stress_migrations.py [--duration 10] [--rates 1 10 20 50]
"""

import argparse

from repro.experiments import table2_stress


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=10.0,
                        help="measurement seconds per rate (paper: 60)")
    parser.add_argument("--rates", type=float, nargs="+",
                        default=[1.0, 10.0, 20.0, 50.0])
    args = parser.parse_args()

    print(f"Stress test: {args.rates} migrations/s for "
          f"{args.duration:.0f} s each (this is the longest example)...")
    result = table2_stress.run(
        rates_per_s=args.rates, duration_s=args.duration
    )
    print("\n" + table2_stress.summarize(result))
    print(
        "\nEvery migration discarded the active PHY's HARQ soft buffers and\n"
        "SNR filter state; HARQ/RLC retransmission absorbed the damage, so\n"
        "no 10 ms interval lost connectivity at moderate rates — the paper's\n"
        "'PHY impairments look like wireless impairments' argument, live."
    )


if __name__ == "__main__":
    main()
