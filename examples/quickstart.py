#!/usr/bin/env python3
"""Quickstart: stand up a Slingshot-protected 5G cell and fail it over.

Builds the paper's testbed topology in simulation — one radio unit, an
edge switch running Slingshot's fronthaul middlebox, two PHY servers
(primary + null-FAPI hot standby), an L2 server with the Orion FAPI
middlebox, a core network, and three UEs — then SIGKILLs the primary PHY
and shows the in-switch detection, the TTI-aligned data-plane migration,
and the UEs sailing through without a radio link failure.

Run:  python examples/quickstart.py
"""

from repro import CellConfig, build_slingshot_cell
from repro.sim.units import MS, US, ns_to_ms, ns_to_us, s_to_ns


def main() -> None:
    print("Building the cell (RU + switch + 2 PHY servers + L2 + core + 3 UEs)...")
    cell = build_slingshot_cell(CellConfig(seed=42))

    print("Running 1 s of normal operation...")
    cell.run_for(s_to_ns(1.0))
    primary = cell.phy_servers[0].phy
    secondary = cell.phy_servers[1].phy
    print(f"  primary PHY:   {primary.cpu.work_slots} work slots, "
          f"{primary.cpu.fec_decodes} FEC decodes")
    print(f"  secondary PHY: {secondary.cpu.work_slots} work slots "
          f"(kept alive by {cell.l2_orion.stats.null_requests_sent} null FAPI "
          f"requests, {secondary.cpu.busy_core_us / 1e3:.1f} core-ms total)")
    print(f"  switch filtered {cell.middlebox.stats.dl_filtered} standby "
          f"downlink packets away from the RU")

    kill_at = cell.sim.now + 137 * US  # Mid-slot, like a real crash.
    print(f"\nSIGKILLing the primary PHY at t={ns_to_ms(kill_at):.3f} ms...")
    cell.kill_phy_at(0, kill_at)
    cell.run_for(s_to_ns(1.0))

    detected = cell.trace.last("mbox.failure_detected")
    committed = cell.trace.last("mbox.migration_committed")
    print(f"  in-switch detection after "
          f"{ns_to_us(detected.time - kill_at):.0f} us "
          f"(timeout 450 us, precision 9 us)")
    print(f"  fronthaul remapped in the data plane at slot "
          f"{committed['slot']} -> PHY {committed['dest_phy']}")
    print(f"  RU control gaps across the whole run: "
          f"{cell.ru.stats.slots_without_control} slots "
          f"(paper: at most 3 dropped TTIs per failover)")

    print("\nUE outcomes:")
    for ue_id, ue in cell.ues.items():
        print(f"  {ue.name:14s}: RLF events={ue.stats.rlf_events}, "
              f"attached={ue.attached}, "
              f"DL decode ok={ue.stats.dl_crc_ok}/{ue.stats.dl_tbs_received}")
    assert all(ue.stats.rlf_events == 0 for ue in cell.ues.values())
    print("\nNo UE ever noticed: failover completed without disconnection.")


if __name__ == "__main__":
    main()
