#!/usr/bin/env python3
"""Fig 11 scenario: zero-downtime live PHY upgrade to better FEC.

Three UEs push uplink UDP. The primary PHY runs an "old build" with a
small LDPC decoding-iteration budget — the two phones sit near the
16-QAM decoding threshold and suffer. The operator then live-upgrades:
the standby is restarted with the new build (more iterations), the cell
is re-initialized on it from Orion's stored config, and traffic migrates
at a TTI boundary. Throughput rises and the shares even out — with zero
control-plane gaps at the RU.

Run:  python examples/live_upgrade.py
"""

from repro.experiments import fig11_upgrade


def main() -> None:
    print("Running the live-upgrade scenario (3 UEs, uplink UDP, "
          "upgrade at t=5 s; this takes a couple of minutes)...")
    result = fig11_upgrade.run(duration_s=10.0, upgrade_at_s=5.0)
    print("\n" + fig11_upgrade.summarize(result))
    print("\nPer-second uplink throughput (Mb/s):")
    names = list(result.series)
    print("  t(s)   " + "  ".join(f"{name:>14s}" for name in names))
    length = min(len(result.series[name]) for name in names)
    for index in range(length):
        time_s = result.series[names[0]][index][0]
        row = "  ".join(
            f"{result.series[name][index][1]:14.1f}" for name in names
        )
        marker = "  <- upgrade" if abs(time_s - result.upgrade_time_s) < 0.5 else ""
        print(f"  {time_s:5.0f}  {row}{marker}")


if __name__ == "__main__":
    main()
