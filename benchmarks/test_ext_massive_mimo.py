"""§10 extension — massive-MIMO migration transient.

Not a paper figure: quantifies the future-work claim that beamforming
state is still discardable soft state, with a larger (but bounded, and
non-disconnecting) transient than the small-antenna case.
"""

from repro.experiments import ext_massive_mimo


def test_ext_massive_mimo_transient(one_shot_benchmark, benchmark):
    result = one_shot_benchmark(ext_massive_mimo.run, 3.0, 1.8)
    print("\n" + ext_massive_mimo.summarize(result))
    benchmark.extra_info["mimo_dip_ms"] = result.massive_mimo.dip_duration_ms()
    benchmark.extra_info["small_dip_ms"] = result.small_antenna.dip_duration_ms()

    # Larger transient than the small-antenna case...
    assert (
        result.massive_mimo.dip_duration_ms()
        > result.small_antenna.dip_duration_ms()
    )
    # ...but bounded (well under a second) and never a disconnection.
    assert result.massive_mimo.dip_duration_ms() < 500.0
    assert result.massive_mimo.rlf_events == 0
    assert result.small_antenna.rlf_events == 0
    # Both recover to the offered rate.
    for transient in (result.massive_mimo, result.small_antenna):
        tail = [m for t, m in transient.series if t > 400.0]
        assert sum(tail) / max(len(tail), 1) > 8.0
