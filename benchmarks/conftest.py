"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports (captured with ``-s`` or
visible in the benchmark's ``extra_info``). Durations are scaled down
from the paper's (e.g. 60 s stress windows become a few seconds) so the
full suite completes in minutes; EXPERIMENTS.md records a full-length
run. Every benchmark asserts the paper's *qualitative* result so a
regression in the reproduction fails loudly.
"""

import pytest


def pytest_benchmark_update_json(config, benchmarks, output_json):
    # Keep the JSON light; the interesting output is in extra_info.
    for bench in output_json.get("benchmarks", []):
        bench.pop("stats_fields", None)


@pytest.fixture
def one_shot_benchmark(benchmark):
    """Run the (expensive, deterministic) experiment exactly once."""
    benchmark._min_rounds = 1

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
