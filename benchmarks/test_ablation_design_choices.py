"""Ablations of Slingshot's remaining design choices (DESIGN.md §5).

* TTI-boundary alignment of migration (vs immediate flipping).
* In-switch vs software (DPDK) fronthaul middlebox.
"""

from repro.experiments import ablations


def test_ablation_tti_alignment(one_shot_benchmark, benchmark):
    result = one_shot_benchmark(ablations.tti_alignment, 2)
    print(f"\n  aligned migrations:   {result.aligned_conflicting_slots} "
          f"mixed-source slots at the RU")
    print(f"  unaligned migrations: {result.unaligned_conflicting_slots} "
          f"mixed-source slots at the RU (protocol violation)")
    benchmark.extra_info["unaligned_conflicts"] = result.unaligned_conflicting_slots

    # Aligned migration never lets the RU hear two PHYs in one slot.
    assert result.aligned_conflicting_slots == 0
    # Immediate (control-plane-style) flipping does.
    assert result.unaligned_conflicting_slots >= 1


def test_ablation_software_vs_switch_middlebox(one_shot_benchmark, benchmark):
    result = one_shot_benchmark(ablations.software_vs_switch_middlebox)
    print(f"\n  software mbox p99.999 latency: "
          f"{result.software_p99999_latency_us:.1f} us (paper: ~10 us)")
    print(f"  coverage radius reduction:     "
          f"{result.software_radius_reduction:.1%} (paper: ~10 %)")
    print(f"  dedicated CPU fraction:        "
          f"{result.software_cpu_fraction:.1%} (paper: ~10 % of PHY cores)")
    print(f"  NIC bandwidth multiplier:      "
          f"{result.software_nic_multiplier:.0f}x (extra hop per packet)")
    print(f"  in-switch added latency:       "
          f"{result.switch_added_latency_us:.1f} us (~0 against the budget)")
    benchmark.extra_info["radius_reduction"] = result.software_radius_reduction

    assert 6.0 < result.software_p99999_latency_us < 16.0
    assert 0.06 < result.software_radius_reduction < 0.16
    assert 0.05 < result.software_cpu_fraction < 0.15
    assert result.software_nic_multiplier == 2.0
    assert result.switch_added_latency_us < 1.0
