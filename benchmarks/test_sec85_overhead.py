"""§8.5 — overhead of maintaining the hot secondary PHY.

Paper: null FAPI keeps the secondary's marginal CPU/FEC cost negligible,
there is no L2 overhead, and the null-FAPI traffic is under 1 MB/s.
The ablation shows the rejected alternative (duplicate real FAPI work)
costs ~100 % of the primary's compute.
"""

from repro.experiments import ablations, sec85_overhead


def test_sec85_secondary_phy_overhead(one_shot_benchmark, benchmark):
    result = one_shot_benchmark(sec85_overhead.run, 2.5)
    print("\n" + sec85_overhead.summarize(result))
    benchmark.extra_info["secondary_cpu_fraction"] = result.secondary_cpu_fraction
    benchmark.extra_info["null_fapi_Bps"] = result.null_fapi_bytes_per_s

    assert result.secondary_cpu_fraction < 0.05        # Negligible CPU.
    assert result.secondary_fec_decodes == 0           # No accelerator use.
    assert result.null_fapi_bytes_per_s < 1_000_000    # < 1 MB/s (paper).
    assert result.primary_fec_decodes > 0              # Primary worked.


def test_sec85_null_vs_duplicate_ablation(one_shot_benchmark, benchmark):
    result = one_shot_benchmark(ablations.null_vs_duplicate_fapi, 1.5)
    print(f"\n  null-FAPI standby:      {result.null_secondary_fraction:.1%} "
          f"of primary compute")
    print(f"  duplicate-FAPI standby: {result.duplicate_secondary_fraction:.1%} "
          f"of primary compute (the rejected design)")
    benchmark.extra_info["null_fraction"] = result.null_secondary_fraction
    benchmark.extra_info["duplicate_fraction"] = result.duplicate_secondary_fraction

    assert result.null_secondary_fraction < 0.05
    assert result.duplicate_secondary_fraction > 0.6   # ~100 % overhead.
