"""Table 2 — stress test for discarding PHY state.

Paper: with 1..50 planned migrations/second for 60 s under an uplink
UDP flow, network downtime stays below 10 ms through 20 migrations/s
(zero blackout 10 ms bins) despite interrupting in-flight HARQ
sequences; only the extreme 50/s rate shows blackout intervals.

Bench scaling: 6 s windows instead of 60 s (full-length run recorded in
EXPERIMENTS.md). Our absolute loss rates are lower than the paper's
because this implementation's drain + HARQ/RLC retransmission recovers
in-flight data the authors' prototype lost; the qualitative rows —
sub-10 ms downtime, interrupted-HARQ growth with rate — hold.
"""

from repro.experiments import table2_stress


def test_table2_state_discard_stress(one_shot_benchmark, benchmark):
    result = one_shot_benchmark(
        table2_stress.run, [1.0, 10.0, 20.0, 50.0], 6.0
    )
    print("\n" + table2_stress.summarize(result))
    rows = {row.migrations_per_s: row for row in result.rows}
    benchmark.extra_info["interrupted_harq_by_rate"] = {
        rate: row.interrupted_harq_seqs for rate, row in rows.items()
    }

    # Sub-10 ms downtime through 20 migrations/s: no zero-throughput
    # 10 ms bin (the paper's availability target).
    for rate in (1.0, 10.0, 20.0):
        assert rows[rate].blackout_bins_10ms == 0, rate
        assert rows[rate].min_tput_mbps_per_10ms > 0.0, rate
    # Migrations really executed at roughly the requested rates.
    assert rows[50.0].migrations_executed > 4 * rows[10.0].migrations_per_s
    # Interrupted HARQ sequences grow with the migration rate yet the
    # flow keeps running (the §4 state-discarding argument).
    assert rows[50.0].interrupted_harq_seqs > rows[1.0].interrupted_harq_seqs
    assert rows[50.0].avg_loss_rate < 0.05
