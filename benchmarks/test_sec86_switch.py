"""§8.6 — switch ASIC resources and the healthy inter-packet gap.

Paper (256 RUs / 256 servers): crossbar 5.2 %, ALU 10.4 %, gateway
14.1 %, SRAM 5.3 %, hash bits 9.5 %; only SRAM grows with scale. Max
healthy downlink inter-packet gap measured 393 us -> 450 us timeout.
"""

from repro.experiments import sec86_switch

PAPER_PERCENT = {
    "crossbar": 5.2,
    "alu": 10.4,
    "gateway": 14.1,
    "sram_bits": 5.3,
    "hash_bits": 9.5,
}


def test_sec86_switch_resources_and_gap(one_shot_benchmark, benchmark):
    result = one_shot_benchmark(sec86_switch.run, 256, 256, 2.5)
    print("\n" + sec86_switch.summarize(result))
    benchmark.extra_info["resource_percent"] = result.resource_percent
    benchmark.extra_info["max_gap_us"] = result.max_gap_us

    for name, paper_value in PAPER_PERCENT.items():
        assert abs(result.resource_percent[name] - paper_value) < 1.0, name
    # Only SRAM scales with deployment size.
    assert result.sram_scaling[1024] > 2 * result.sram_scaling[64]
    # The measured gap motivates the 450 us timeout: a real fraction of
    # it, but strictly below (no false positives).
    assert 200.0 < result.max_gap_us < result.detector_timeout_us
    # Busy traffic only densifies packets; it cannot widen the max gap
    # beyond the timeout either.
    assert result.max_gap_busy_us < result.detector_timeout_us
