"""Fig 10 — TCP/UDP throughput through failover and planned migration.

Paper: downlink TCP/UDP unaffected; uplink UDP dips and recovers within
~20 ms; uplink TCP stalls briefly and recovers with a retransmission
burst (their testbed: 0 for 80 ms, full at 110 ms); a planned migration
causes no drop at all.
"""

from repro.experiments import fig10_throughput


def _print_trace(trace):
    window = [
        f"{mbps:.0f}"
        for t, mbps in trace.relative()
        if -50.0 <= t <= 200.0
    ]
    print(f"  {trace.label:16s} [-50..200ms]: {' '.join(window)}")


def test_fig10_throughput_through_events(one_shot_benchmark, benchmark):
    result = one_shot_benchmark(fig10_throughput.run, 2.4, 1.8)
    print("\n" + fig10_throughput.summarize(result))
    for trace in (
        result.downlink_udp, result.downlink_tcp,
        result.uplink_udp, result.uplink_tcp, result.uplink_tcp_planned,
    ):
        _print_trace(trace)
    benchmark.extra_info["ul_tcp_zero_window_ms"] = result.uplink_tcp.zero_window_ms()
    benchmark.extra_info["ul_udp_zero_window_ms"] = result.uplink_udp.zero_window_ms()

    # Downlink: no noticeable degradation (DL HARQ state lives in UE+L2).
    assert result.downlink_udp.zero_window_ms() == 0.0
    assert result.downlink_tcp.zero_window_ms() <= 20.0
    # Uplink UDP: a sub-20 ms dip, then back to the offered rate.
    assert result.uplink_udp.zero_window_ms() <= 20.0
    recovery = result.uplink_udp.recovery_ms()
    assert recovery is not None and recovery <= 30.0
    # Uplink TCP: brief stall (bounded well under the paper's 110 ms),
    # then full recovery with a catch-up burst.
    assert result.uplink_tcp.zero_window_ms() <= 110.0
    after = [m for t, m in result.uplink_tcp.series
             if t > result.uplink_tcp.event_time_ms + 150.0]
    before = [m for t, m in result.uplink_tcp.series
              if t < result.uplink_tcp.event_time_ms - 50.0]
    assert sum(after) / len(after) > 0.8 * sum(before) / len(before)
    burst = max(m for t, m in result.uplink_tcp.series
                if 0 <= t - result.uplink_tcp.event_time_ms <= 120.0)
    assert burst > 1.2 * sum(before) / len(before)  # Retransmission burst.
    # Planned migration: no drop whatsoever.
    assert result.uplink_tcp_planned.zero_window_ms() == 0.0
    assert result.uplink_tcp_planned.min_after_event_mbps() > 20.0
