"""§5.2 — in-switch failure detection microbenchmark.

Paper: T = 450 us timeout with n = 50 ticks (9 us precision), chosen
above the measured 393 us healthy gap; failures detected within ~1 TTI;
the ablation sweeps T to show the trade-off.
"""

from repro.experiments import ablations, sec52_detector


def test_sec52_detection_latency(one_shot_benchmark, benchmark):
    result = one_shot_benchmark(sec52_detector.run, 6, 2.0)
    print("\n" + sec52_detector.summarize(result))
    benchmark.extra_info["median_latency_us"] = result.median_us()
    benchmark.extra_info["max_latency_us"] = result.max_us()

    assert len(result.detection_latencies_us) == 6      # Every kill detected.
    # Detection within T + precision + one heartbeat interval of the kill.
    assert result.max_us() <= 1000.0                    # ~2 TTIs worst case.
    assert result.median_us() <= 550.0
    assert result.false_positives == 0
    assert result.precision_us == 9.0
    assert result.pktgen_rate_pps < 200_000             # Negligible load.


def test_sec52_timeout_sweep_ablation(one_shot_benchmark, benchmark):
    points = one_shot_benchmark(
        ablations.detector_timeout_sweep, [250.0, 450.0, 1800.0]
    )
    print("\n  T(us)  false-positives  detection-latency(us)")
    for point in points:
        latency = (
            f"{point.detection_latency_us:.0f}"
            if point.detection_latency_us is not None else "-"
        )
        print(f"  {point.timeout_us:6.0f}  {point.false_positives:15d}  {latency:>12s}")
    by_timeout = {p.timeout_us: p for p in points}
    # Below the healthy-gap envelope: false positives on routine jitter.
    assert by_timeout[250.0].false_positives > 0
    # The paper's choice: clean, and fast.
    assert by_timeout[450.0].false_positives == 0
    # Oversized timeouts detect strictly more slowly.
    assert (
        by_timeout[1800.0].detection_latency_us
        > by_timeout[450.0].detection_latency_us
    )
