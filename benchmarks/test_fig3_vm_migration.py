"""Fig 3 — pre-copy VM migration pause-time CDF (TCP vs RDMA).

Paper: 80 migrations; median pause 244 ms; FlexRAN crashes in all runs.
"""

import numpy as np

from repro.experiments import fig3_vm_migration
from repro.experiments.fig3_vm_migration import TransportKind


def test_fig3_vm_migration_pause_cdf(one_shot_benchmark, benchmark):
    result = one_shot_benchmark(fig3_vm_migration.run, 40)
    print("\n" + fig3_vm_migration.summarize(result))
    for transport in (TransportKind.TCP, TransportKind.RDMA):
        cdf = result.cdf(transport)
        series = ", ".join(f"({p:.0f}ms,{f:.2f})" for p, f in cdf[::8])
        print(f"  CDF {transport.value}: {series}")
    benchmark.extra_info["median_pause_ms"] = result.median_pause_ms()
    benchmark.extra_info["crash_fraction"] = result.crash_fraction()
    # Paper's qualitative results.
    assert 150.0 < result.median_pause_ms() < 400.0      # ~244 ms.
    assert result.crash_fraction() == 1.0                 # All runs crash.
    tcp = np.median([r.pause_time_ms for r in result.tcp_runs])
    rdma = np.median([r.pause_time_ms for r in result.rdma_runs])
    assert rdma < tcp                                     # RDMA helps, but not enough.
    assert min(r.pause_time_ms for r in result.all_runs) > 50.0
