"""Fig 8 — video-conferencing bitrate through a PHY failure.

Paper: without Slingshot the UE disconnects for 6.2 s (bitrate 0);
with Slingshot the bitrate stays steady; no-failure control is flat.

Bench scaling: 6 s runs instead of the paper's 12 s (the baseline's
outage is cut off by the window end but its onset and depth are fully
visible); EXPERIMENTS.md records a full 12 s run.
"""

from repro.experiments import fig8_video


def test_fig8_video_failover(one_shot_benchmark, benchmark):
    result = one_shot_benchmark(
        fig8_video.run, 6.0, 2.0, 500_000.0
    )
    print("\n" + fig8_video.summarize(result))
    for scenario in (
        result.no_failure,
        result.failure_without_slingshot,
        result.failure_with_slingshot,
    ):
        series = " ".join(f"{kbps:.0f}" for _, kbps in scenario.bitrate_kbps)
        print(f"  {scenario.label:24s}: {series} (kbps per 500 ms)")
    benchmark.extra_info["baseline_outage_s"] = (
        result.failure_without_slingshot.outage_seconds
    )
    benchmark.extra_info["slingshot_outage_s"] = (
        result.failure_with_slingshot.outage_seconds
    )
    # Control: steady at the target bitrate, no outage.
    control = [k for _, k in result.no_failure.bitrate_kbps]
    assert result.no_failure.outage_seconds == 0.0
    assert 400 < sum(control) / len(control) < 600
    # Baseline: hard outage beginning at the failure, UE reattaching.
    assert result.failure_without_slingshot.outage_seconds > 2.0
    assert result.failure_without_slingshot.rlf_events == 1
    # Slingshot: zero downtime, no RLF.
    assert result.failure_with_slingshot.outage_seconds == 0.0
    assert result.failure_with_slingshot.rlf_events == 0
