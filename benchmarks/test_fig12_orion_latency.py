"""Fig 12 — one-way latency added by Orion vs downlink load.

Paper: median/p99/p99.999 added one-way latency stays under 200 us even
at 3.4 Gb/s of downlink user traffic — well within the one-TTI (500 us)
FAPI transfer budget.
"""

from repro.experiments import fig12_orion_latency


def test_fig12_orion_added_latency(one_shot_benchmark, benchmark):
    result = one_shot_benchmark(fig12_orion_latency.run, 1.0)
    print("\n" + fig12_orion_latency.summarize(result))
    benchmark.extra_info["max_p99999_us"] = result.max_added_latency_us()

    # Latency grows with load...
    medians = [p.median_us for p in result.points]
    assert medians == sorted(medians)
    # ...but stays far below the 500 us TTI budget at every load point.
    assert result.max_added_latency_us() < 250.0
    # Idle overhead is a few microseconds (two service hops + wire).
    assert result.points[0].median_us < 10.0
    # The top load point actually offered ~3.4 Gb/s worth of messages.
    assert result.points[-1].samples > 5_000
