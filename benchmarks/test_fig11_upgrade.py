"""Fig 11 — live PHY upgrade to better FEC with zero downtime.

Paper: before the upgrade the two phones get low uplink throughput and
the Raspberry Pi an outsized share; after migrating onto the upgraded
PHY (better FEC) the phones improve and the shares even out, with no
network downtime.
"""

from repro.experiments import fig11_upgrade


def test_fig11_live_fec_upgrade(one_shot_benchmark, benchmark):
    result = one_shot_benchmark(fig11_upgrade.run, 8.0, 4.0)
    print("\n" + fig11_upgrade.summarize(result))
    for name, series in result.series.items():
        print(f"  {name:14s}: " + " ".join(f"{m:.1f}" for _, m in series))
    fairness_before, fairness_after = result.fairness_before_after()
    benchmark.extra_info["fairness_before"] = fairness_before
    benchmark.extra_info["fairness_after"] = fairness_after

    # Phones improve materially (the FEC-iteration effect is real BP math).
    for phone in ("OnePlus N10", "Samsung A52s"):
        before, after = result.mean_before_after(phone)
        assert after > 1.4 * before, phone
    # Shares even out.
    assert fairness_after > fairness_before
    assert fairness_after > 0.93
    # Zero downtime during the upgrade migration.
    assert result.control_gaps_during_upgrade == 0
