"""Fig 9 — ping latency across a PHY failover (three UEs).

Paper: 10 ms-interval pings; the failover transient resembles natural
wireless fluctuation (worst case a ~15 ms spike on one UE); no UE loses
connectivity.
"""

import numpy as np

from repro.experiments import fig9_ping


def test_fig9_ping_through_failover(one_shot_benchmark, benchmark):
    result = one_shot_benchmark(fig9_ping.run, 3.2, 2.0)
    print("\n" + fig9_ping.summarize(result))
    for name, series in result.rtt_series.items():
        window = [
            f"{rtt:.0f}" for t, rtt in series
            if abs(t - result.failure_time_s) < 0.25
        ]
        print(f"  {name} around failover (ms): {' '.join(window)}")
    benchmark.extra_info["max_spike_ms"] = result.max_spike_ms()
    # All UEs answered pings continuously.
    for name, series in result.rtt_series.items():
        assert len(series) > 250, name
        assert result.losses[name] <= 2, name
    # Latencies stay at cellular scale; the failover spike is small.
    medians = [
        float(np.median([rtt for _, rtt in series]))
        for series in result.rtt_series.values()
    ]
    assert all(15.0 < m < 60.0 for m in medians)
    assert result.max_spike_ms() < 25.0   # Paper: 15 ms worst spike.
    # Detection really happened during the run.
    assert result.detection_time_s is not None
    assert 0.0 < result.detection_time_s - result.failure_time_s < 0.002
