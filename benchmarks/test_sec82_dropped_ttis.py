"""§8.2 — TTIs dropped per resilience event.

Paper: Slingshot failover drops at most three TTIs (two orders of
magnitude below VM migration's hundreds); planned migration drops none.
"""

from repro.experiments import sec82_dropped_ttis


def test_sec82_dropped_tti_comparison(one_shot_benchmark, benchmark):
    result = one_shot_benchmark(sec82_dropped_ttis.run, 5)
    print("\n" + sec82_dropped_ttis.summarize(result))
    benchmark.extra_info["failover_dropped"] = result.failover_dropped
    benchmark.extra_info["vm_migration_dropped"] = result.vm_migration_dropped

    assert result.max_failover_dropped() <= 3          # Paper: <= 3 TTIs.
    assert result.planned_dropped == 0                  # Paper: 0.
    assert result.vm_migration_dropped > 100            # Paper: hundreds.
    # The two-orders-of-magnitude claim.
    assert result.vm_migration_dropped > 50 * max(
        result.max_failover_dropped(), 1
    )
