"""Shard-runner tests: determinism, ordered flush, failure surfacing,
and serial-vs-parallel bit-equality of the drivers that use it.

The contract under test (see :mod:`repro.parallel.pool`): at any
``--jobs`` value the merged results, the streamed progress order, and
every canonical-trace digest are identical to a serial run; worker
failures surface with the shard key instead of hanging the sweep.
"""

import os
import time

import pytest

from repro.parallel import (
    ShardCrash,
    ShardError,
    available_parallelism,
    run_shards,
)
from repro.parallel.pool import fork_available, measured_parallelism

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="no fork start method on this platform"
)


# ----------------------------------------------------------------------
# Top-level workers (must be picklable for the pool tests)
# ----------------------------------------------------------------------
def _double(payload):
    return payload * 2


def _sleep_inverse(payload):
    """Later shards finish first, forcing out-of-order completion."""
    index, count = payload
    time.sleep(0.05 * (count - index))
    return index


def _fail_on_two(payload):
    if payload == 2:
        raise ValueError("boom")
    return payload


def _exit_on_two(payload):
    if payload == 2:
        os._exit(13)
    return payload


def _exit_once_on_two(payload):
    """Crash shard 2 the first time only (marker file), succeed after."""
    value, marker = payload
    if value == 2 and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("crashed")
        os._exit(13)
    return value * 2


def _exit_on_two_loudly(payload):
    if payload == 2:
        # fd 2 directly: that's where hard-death evidence (interpreter
        # fatal errors, C-level aborts) lands, and what the pool's
        # stderr capture redirects. pytest swaps sys.stderr for its own
        # object, so writing through it would bypass the redirect.
        os.write(2, b"fatal: shard two always dies\n")
        os._exit(13)
    return payload


class TestRunShardsSerial:
    def test_results_in_canonical_order(self):
        outcome = run_shards(_double, [(("k", i), i) for i in range(5)], jobs=1)
        assert outcome.mode == "serial"
        assert outcome.values() == [0, 2, 4, 6, 8]
        assert outcome.keys == [("k", i) for i in range(5)]

    def test_worker_exception_raises_shard_error_with_key(self):
        with pytest.raises(ShardError) as excinfo:
            run_shards(_fail_on_two, [(i, i) for i in range(4)], jobs=1)
        assert excinfo.value.key == 2
        assert "ValueError" in excinfo.value.traceback_text

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            run_shards(_double, [("a", 1), ("a", 2)], jobs=1)

    def test_nonpositive_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            run_shards(_double, [("a", 1)], jobs=0)

    def test_accounting_shape(self):
        outcome = run_shards(_double, [(i, i) for i in range(3)], jobs=1)
        accounting = outcome.accounting()
        assert accounting["shards"] == 3
        assert accounting["mode"] == "serial"
        assert len(accounting["per_shard"]) == 3
        assert accounting["wall_seconds"] >= 0
        for stat in accounting["per_shard"]:
            assert {"key", "wall_seconds", "peak_rss_kb", "pid"} <= set(stat)

    def test_probe_and_cpu_count_sane(self):
        assert available_parallelism() >= 1
        assert measured_parallelism(1) == 1.0


@needs_fork
class TestRunShardsPool:
    def test_results_and_progress_in_canonical_order(self):
        count = 6
        streamed = []
        outcome = run_shards(
            _sleep_inverse,
            [((("s", i)), (i, count)) for i in range(count)],
            jobs=4,
            progress=lambda key, value: streamed.append(key),
        )
        assert outcome.mode == "fork"
        assert outcome.effective_jobs == 4
        # Later shards completed first, yet both the merged values and
        # the streamed keys come back in submission order.
        assert outcome.values() == list(range(count))
        assert streamed == [("s", i) for i in range(count)]

    def test_worker_exception_surfaces_key_without_hanging(self):
        with pytest.raises(ShardError) as excinfo:
            run_shards(_fail_on_two, [(i, i) for i in range(4)], jobs=2)
        assert excinfo.value.key == 2

    def test_hard_worker_death_surfaces_candidates_without_hanging(self):
        with pytest.raises(ShardCrash) as excinfo:
            run_shards(_exit_on_two, [(("c", i), i) for i in range(4)], jobs=2)
        # The crashed shard is among the unfinished candidates, in
        # canonical order.
        assert ("c", 2) in excinfo.value.candidate_keys
        assert excinfo.value.candidate_keys == sorted(
            excinfo.value.candidate_keys
        )

    def test_single_shard_falls_back_to_serial(self):
        outcome = run_shards(_double, [("only", 21)], jobs=8)
        assert outcome.mode == "serial"
        assert outcome.values() == [42]

    def test_transient_crash_retried_once_and_recovers(self, tmp_path):
        """A shard that hard-crashes once finishes on the fresh-pool
        retry: values and order unchanged, retry recorded."""
        marker = str(tmp_path / "crashed-once")
        outcome = run_shards(
            _exit_once_on_two,
            [(("r", i), (i, marker)) for i in range(4)],
            jobs=2,
        )
        assert os.path.exists(marker), "crash never happened"
        assert outcome.values() == [0, 2, 4, 6]
        assert outcome.shard_retries == 1
        assert outcome.accounting()["shard_retries"] == 1

    def test_permanent_crash_reports_retries_and_stderr_tail(self):
        with pytest.raises(ShardCrash) as excinfo:
            run_shards(
                _exit_on_two_loudly, [(("c", i), i) for i in range(4)], jobs=2
            )
        assert ("c", 2) in excinfo.value.candidate_keys
        assert excinfo.value.retries == 1
        assert "fatal: shard two always dies" in excinfo.value.stderr_tail
        assert "fatal: shard two always dies" in str(excinfo.value)


class TestChaosJobsSmoke:
    def test_chaos_cli_jobs_two_on_scenario_subset(self, capsys):
        """Tier-1 smoke: `python -m repro chaos --jobs 2` on a 2-scenario
        subset must pass and stream one line per run."""
        from repro.faults.campaign import main as chaos_main

        exit_code = chaos_main(
            [
                "--scenario", "cmd_drop",
                "--scenario", "crash_restart",
                "--seeds", "1",
                "--no-replay",
                "--jobs", "2",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0, f"chaos smoke failed:\n{output}"
        assert "cmd_drop" in output and "crash_restart" in output
        assert "2 runs, 0 failed" in output


@pytest.mark.slow
class TestSerialParallelEquality:
    def test_standard_campaign_digests_identical_across_jobs(self):
        """The full standard chaos campaign produces a bit-identical
        deterministic report (every digest included) at jobs 1, 2, 4."""
        from repro.faults.campaign import run_campaign

        reports = {
            jobs: run_campaign(replay=False, jobs=jobs) for jobs in (1, 2, 4)
        }
        serial = reports[1].as_dict()
        assert serial["runs_total"] > 0 and serial["passed"]
        assert reports[2].as_dict() == serial
        assert reports[4].as_dict() == serial
        # The execution accounting (excluded from as_dict) did record
        # the fan-out.
        assert reports[4].execution["jobs"] == 4

    def test_perf_macro_digests_identical_across_jobs(self):
        """Macro perf scenarios fan out under --jobs with unchanged
        digests (timings are per-worker; only accounting differs)."""
        from repro.perf.harness import run_benchmarks

        names = ["macro_fig9", "macro_chaos_crash_restart"]
        digests = {}
        for jobs in (1, 2, 4):
            report = run_benchmarks(
                names=names, quick=True, profile=False, jobs=jobs
            )
            digests[jobs] = {
                name: report.results[name].digest for name in names
            }
            if jobs > 1:
                assert report.execution is not None
                assert report.execution["shards"] == len(names)
        assert digests[2] == digests[1]
        assert digests[4] == digests[1]

    def test_experiment_sweeps_identical_across_jobs(self):
        """sec52/sec82 trial sweeps return equal results at any jobs
        value (kill offsets are pre-drawn in serial order)."""
        from repro.experiments import sec52_detector, sec82_dropped_ttis

        serial = sec52_detector.run(trials=2, healthy_seconds=0.5, jobs=1)
        pooled = sec52_detector.run(trials=2, healthy_seconds=0.5, jobs=2)
        assert pooled == serial

        serial82 = sec82_dropped_ttis.run(trials=2, jobs=1)
        pooled82 = sec82_dropped_ttis.run(trials=2, jobs=2)
        assert pooled82 == serial82
