"""Tests for OFDM numerology, TDD patterns, and the slot clock."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.numerology import (
    MAX_FRAME,
    Numerology,
    SlotAddress,
    SlotClock,
    SlotType,
    TddPattern,
)
from repro.sim.units import US


class TestNumerology:
    def test_mu1_slot_is_500_us(self):
        assert Numerology(mu=1).slot_duration_ns == 500 * US

    def test_mu0_slot_is_1_ms(self):
        assert Numerology(mu=0).slot_duration_ns == 1000 * US

    def test_slots_per_frame(self):
        assert Numerology(mu=1).slots_per_frame == 20

    def test_resource_elements(self):
        numerology = Numerology()
        # 12 data symbols x 12 subcarriers per PRB.
        assert numerology.resource_elements_per_slot(1) == 144
        assert numerology.resource_elements_per_slot(273) == 273 * 144


class TestTddPattern:
    def test_dddsu_types(self):
        tdd = TddPattern("DDDSU")
        assert tdd.slot_type(0) is SlotType.DOWNLINK
        assert tdd.slot_type(3) is SlotType.SPECIAL
        assert tdd.slot_type(4) is SlotType.UPLINK
        assert tdd.slot_type(9) is SlotType.UPLINK  # Repeats mod 5.

    def test_counts(self):
        tdd = TddPattern("DDDSU")
        assert tdd.slots_of_type(SlotType.DOWNLINK) == 3
        assert tdd.slots_of_type(SlotType.UPLINK) == 1

    def test_invalid_pattern_rejected(self):
        with pytest.raises(ValueError):
            TddPattern("DDXU")
        with pytest.raises(ValueError):
            TddPattern("")


class TestSlotClock:
    def test_slot_boundaries(self):
        clock = SlotClock(Numerology())
        assert clock.slot_at(0) == 0
        assert clock.slot_at(499_999) == 0
        assert clock.slot_at(500_000) == 1
        assert clock.slot_start(7) == 7 * 500_000

    def test_epoch_offset(self):
        clock = SlotClock(Numerology(), epoch_ns=100)
        assert clock.slot_at(99) == -1
        assert clock.slot_at(100) == 0

    def test_address_of_wraps_at_1024_frames(self):
        clock = SlotClock(Numerology())
        slots_per_frame = 20
        address = clock.address_of(MAX_FRAME * slots_per_frame + 3)
        assert address.frame == 0
        assert address.subframe == 1
        assert address.slot == 1

    def test_address_fields_in_range(self):
        clock = SlotClock(Numerology())
        for slot in (0, 1, 19, 20, 54321):
            address = clock.address_of(slot)
            assert 0 <= address.frame < MAX_FRAME
            assert 0 <= address.subframe < 10
            assert 0 <= address.slot < 2

    @given(st.integers(min_value=0, max_value=10_000_000))
    @settings(max_examples=100, deadline=None)
    def test_address_roundtrip_near_reference(self, slot):
        """absolute_from_address inverts address_of when given a nearby
        reference slot — the resolution the switch middlebox performs."""
        clock = SlotClock(Numerology())
        address = clock.address_of(slot)
        for drift in (-300, 0, 300):
            recovered = clock.absolute_from_address(address, near_slot=slot + drift)
            assert recovered == slot
