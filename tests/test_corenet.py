"""Tests for the core network and application server."""

import pytest

from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.corenet.core import CoreConfig
from repro.sim.units import MS, s_to_ns
from repro.transport.packet import FlowDirection, Packet


def single_ue_cell(seed=31, **core_overrides):
    config = CellConfig(
        seed=seed, ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=17.0)]
    )
    cell = build_slingshot_cell(config)
    for key, value in core_overrides.items():
        setattr(cell.core.config, key, value)
    return cell


class TestUserPlane:
    def test_downlink_traverses_core_to_ue(self):
        cell = single_ue_cell()
        received = []
        cell.ue(1).dl_sink = lambda bearer, sdu: received.append(sdu)
        cell.run_for(s_to_ns(0.2))
        packet = Packet(
            flow_id="x", ue_id=1, bearer_id=1,
            direction=FlowDirection.DOWNLINK, payload="hello",
            size_bytes=100, created_ns=cell.sim.now,
        )
        cell.server.send_to_ue(packet)
        cell.run_for(s_to_ns(0.1))
        assert len(received) == 1
        assert received[0].payload == "hello"

    def test_uplink_traverses_to_server_flow_handler(self):
        cell = single_ue_cell()
        received = []
        cell.server.register_flow("up", received.append)
        cell.run_for(s_to_ns(0.2))
        packet = Packet(
            flow_id="up", ue_id=1, bearer_id=1,
            direction=FlowDirection.UPLINK, payload="data",
            size_bytes=100, created_ns=cell.sim.now,
        )
        cell.ue(1).send_uplink(1, packet, packet.size_bytes)
        cell.run_for(s_to_ns(0.1))
        assert len(received) == 1

    def test_one_way_latency_includes_backhaul_and_server_legs(self):
        cell = single_ue_cell()
        arrivals = []
        cell.server.register_flow("lat", lambda p: arrivals.append(cell.sim.now))
        cell.run_for(s_to_ns(0.2))
        sent_at = cell.sim.now
        packet = Packet(
            flow_id="lat", ue_id=1, bearer_id=1,
            direction=FlowDirection.UPLINK, payload=None,
            size_bytes=100, created_ns=sent_at,
        )
        cell.ue(1).send_uplink(1, packet, 100)
        cell.run_for(s_to_ns(0.1))
        one_way_ms = (arrivals[0] - sent_at) / MS
        # Radio scheduling + backhaul (4 ms) + server leg (6 ms).
        assert 10.0 < one_way_ms < 25.0

    def test_unknown_ue_downlink_dropped(self):
        cell = single_ue_cell()
        cell.run_for(s_to_ns(0.1))
        packet = Packet(
            flow_id="x", ue_id=99, bearer_id=1,
            direction=FlowDirection.DOWNLINK, payload=None, size_bytes=10,
        )
        cell.server.send_to_ue(packet)
        cell.run_for(s_to_ns(0.05))  # No crash; silently dropped.


class TestAttachProcedure:
    def test_reattach_duration_near_6_2_seconds(self):
        cell = single_ue_cell(seed=32)
        cell.run_for(s_to_ns(0.2))
        ue = cell.ue(1)
        cell.core._on_ue_rlf(ue)  # Simulate RLF entry.
        started = cell.trace.last("core.attach_started")
        assert started is not None
        expected_s = started["expected_ns"] / 1e9
        assert 5.5 < expected_s < 7.0

    def test_reattach_reregisters_ue_at_l2(self):
        cell = single_ue_cell(seed=33, attach_duration_ns=s_to_ns(0.1))
        cell.run_for(s_to_ns(0.2))
        ue = cell.ue(1)
        ue.attached = False
        ue.port.attached = False
        cell.core._on_ue_rlf(ue)
        assert 1 not in cell.l2.ues
        cell.run_for(s_to_ns(0.6))
        assert 1 in cell.l2.ues
        assert ue.attached
