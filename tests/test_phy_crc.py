"""Unit + property tests for CRC-24A."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.crc import (
    CRC24_BITS,
    attach_crc,
    attach_crc_batch,
    check_crc,
    crc24a,
    crc24a_batch,
    crc24a_reference,
)


class TestCrcBasics:
    def test_crc_is_24_bits(self):
        bits = np.ones(64, dtype=np.uint8)
        assert 0 <= crc24a(bits) < (1 << 24)

    def test_attach_appends_24_bits(self):
        payload = np.zeros(100, dtype=np.uint8)
        block = attach_crc(payload)
        assert len(block) == 100 + CRC24_BITS

    def test_attach_then_check_passes(self):
        rng = np.random.default_rng(0)
        payload = rng.integers(0, 2, 300, dtype=np.uint8)
        assert check_crc(attach_crc(payload))

    def test_single_bit_error_detected(self):
        rng = np.random.default_rng(1)
        block = attach_crc(rng.integers(0, 2, 300, dtype=np.uint8))
        for position in (0, 57, 150, len(block) - 1):
            corrupted = block.copy()
            corrupted[position] ^= 1
            assert not check_crc(corrupted), f"missed flip at {position}"

    def test_burst_error_detected(self):
        rng = np.random.default_rng(2)
        block = attach_crc(rng.integers(0, 2, 300, dtype=np.uint8))
        corrupted = block.copy()
        corrupted[40:60] ^= 1
        assert not check_crc(corrupted)

    def test_too_short_block_fails_check(self):
        assert not check_crc(np.ones(CRC24_BITS, dtype=np.uint8))
        assert not check_crc(np.ones(5, dtype=np.uint8))

    def test_known_differences_across_payloads(self):
        a = crc24a(np.zeros(48, dtype=np.uint8))
        b = crc24a(np.ones(48, dtype=np.uint8))
        assert a != b

    def test_bit_serial_matches_table_for_byte_multiple(self):
        """The byte-wise fast path and bit-serial path must agree."""
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, 128, dtype=np.uint8)
        fast = crc24a(bits)
        # Force the bit-serial path with a non-multiple length, padded
        # back to equivalence manually: compute serially on same input.
        register = 0
        poly = 0x1864CFB
        for bit in bits:
            register ^= int(bit) << 23
            register <<= 1
            if register & 0x1000000:
                register ^= poly
            register &= 0xFFFFFF
        assert fast == register


class TestCrcProperties:
    @given(st.binary(min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_random_payloads(self, data):
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        assert check_crc(attach_crc(bits))

    @given(
        st.binary(min_size=2, max_size=60),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_single_flip_detected(self, data, position_seed):
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        block = attach_crc(bits)
        position = position_seed % len(block)
        block[position] ^= 1
        assert not check_crc(block)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=97))
    @settings(max_examples=40, deadline=None)
    def test_non_byte_aligned_lengths(self, bit_list):
        bits = np.array(bit_list, dtype=np.uint8)
        assert check_crc(attach_crc(bits))


class TestCrcFuzzPins:
    """The vectorized fast paths pinned to the bit-serial reference.

    ``crc24a_reference`` is the normative implementation; ``crc24a``
    (single-block gather) and ``crc24a_batch`` (padded matrix) must match
    it exactly on every input. The corpus is ~1k random blocks spanning
    lengths 0..4096 from a reserved ``perf.*`` RngRegistry stream.
    """

    def _corpus(self):
        from repro.perf.benchmarks import CORPUS_SEED
        from repro.sim.rng import RngRegistry

        rng = RngRegistry(CORPUS_SEED).stream("perf.crc_fuzz")
        return [
            rng.integers(0, 2, size=int(rng.integers(0, 4097)), dtype=np.uint8)
            for _ in range(1000)
        ]

    def test_fast_and_batch_pin_to_reference(self):
        blocks = self._corpus()
        references = np.array(
            [crc24a_reference(block) for block in blocks], dtype=np.int64
        )
        scalars = np.array([crc24a(block) for block in blocks], dtype=np.int64)
        batch = crc24a_batch(blocks).astype(np.int64)
        assert np.array_equal(scalars, references)
        assert np.array_equal(batch, references)

    def test_attach_batch_roundtrip(self):
        blocks = self._corpus()[:200]
        attached = attach_crc_batch(blocks)
        for payload, block in zip(blocks, attached):
            assert len(block) == len(payload) + CRC24_BITS
            assert np.array_equal(block, attach_crc(payload))
            assert check_crc(block)

    def test_batch_of_empty_and_edge_lengths(self):
        edges = [
            np.zeros(0, dtype=np.uint8),
            np.ones(1, dtype=np.uint8),
            np.zeros(7, dtype=np.uint8),
            np.ones(8, dtype=np.uint8),
            np.ones(4096, dtype=np.uint8),
        ]
        batch = crc24a_batch(edges).astype(np.int64)
        for value, block in zip(batch, edges):
            assert int(value) == crc24a_reference(block) == crc24a(block)
