"""Unit + property tests for CRC-24A."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.crc import CRC24_BITS, attach_crc, check_crc, crc24a


class TestCrcBasics:
    def test_crc_is_24_bits(self):
        bits = np.ones(64, dtype=np.uint8)
        assert 0 <= crc24a(bits) < (1 << 24)

    def test_attach_appends_24_bits(self):
        payload = np.zeros(100, dtype=np.uint8)
        block = attach_crc(payload)
        assert len(block) == 100 + CRC24_BITS

    def test_attach_then_check_passes(self):
        rng = np.random.default_rng(0)
        payload = rng.integers(0, 2, 300, dtype=np.uint8)
        assert check_crc(attach_crc(payload))

    def test_single_bit_error_detected(self):
        rng = np.random.default_rng(1)
        block = attach_crc(rng.integers(0, 2, 300, dtype=np.uint8))
        for position in (0, 57, 150, len(block) - 1):
            corrupted = block.copy()
            corrupted[position] ^= 1
            assert not check_crc(corrupted), f"missed flip at {position}"

    def test_burst_error_detected(self):
        rng = np.random.default_rng(2)
        block = attach_crc(rng.integers(0, 2, 300, dtype=np.uint8))
        corrupted = block.copy()
        corrupted[40:60] ^= 1
        assert not check_crc(corrupted)

    def test_too_short_block_fails_check(self):
        assert not check_crc(np.ones(CRC24_BITS, dtype=np.uint8))
        assert not check_crc(np.ones(5, dtype=np.uint8))

    def test_known_differences_across_payloads(self):
        a = crc24a(np.zeros(48, dtype=np.uint8))
        b = crc24a(np.ones(48, dtype=np.uint8))
        assert a != b

    def test_bit_serial_matches_table_for_byte_multiple(self):
        """The byte-wise fast path and bit-serial path must agree."""
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, 128, dtype=np.uint8)
        fast = crc24a(bits)
        # Force the bit-serial path with a non-multiple length, padded
        # back to equivalence manually: compute serially on same input.
        register = 0
        poly = 0x1864CFB
        for bit in bits:
            register ^= int(bit) << 23
            register <<= 1
            if register & 0x1000000:
                register ^= poly
            register &= 0xFFFFFF
        assert fast == register


class TestCrcProperties:
    @given(st.binary(min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_random_payloads(self, data):
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        assert check_crc(attach_crc(bits))

    @given(
        st.binary(min_size=2, max_size=60),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_single_flip_detected(self, data, position_seed):
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        block = attach_crc(bits)
        position = position_seed % len(block)
        block[position] ^= 1
        assert not check_crc(block)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=97))
    @settings(max_examples=40, deadline=None)
    def test_non_byte_aligned_lengths(self, bit_list):
        bits = np.array(bit_list, dtype=np.uint8)
        assert check_crc(attach_crc(bits))
