"""Whole-program analysis layer: the Program model, cross-file STREAM
ownership, the checkpointability inventory, the suppression audit, file
discovery, and the pinned rule catalog."""

import json
from pathlib import Path

from repro.analysis.program import Program, module_name_for
from repro.analysis.registry import LintContext, run_program_rules
from repro.analysis.runner import (
    LINT_BUDGET_SECONDS,
    discover_files,
    lint_report,
    rule_catalog,
)
from repro.analysis.state_inventory import build_inventory
from repro.analysis.streams import (
    COMPOSITION_ROOTS,
    NAMESPACES,
    namespace_head,
    ownership_map,
    stream_sites,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE = REPO_ROOT / "src" / "repro"


def ctx(source, path):
    return LintContext.for_source(source, path=path)


def program_of(*pairs):
    return Program([ctx(source, path) for path, source in pairs])


class TestProgramModel:
    def test_module_naming(self):
        assert (
            module_name_for(ctx("x = 1\n", "src/repro/cell/deployment.py"))
            == "repro.cell.deployment"
        )
        assert (
            module_name_for(ctx("x = 1\n", "src/repro/sim/__init__.py"))
            == "repro.sim"
        )

    def test_subsystem_and_aliases(self):
        program = program_of(
            (
                "src/repro/cell/deployment.py",
                "from repro.sim.units import run_for_ns as rfn\n"
                "import repro.sim.engine as engine\n",
            )
        )
        info = program.modules["repro.cell.deployment"]
        assert info.subsystem == "cell"
        assert info.aliases["rfn"] == "repro.sim.units.run_for_ns"
        assert info.aliases["engine"] == "repro.sim.engine"

    def test_bare_and_aliased_call_resolution(self):
        program = program_of(
            (
                "src/repro/sim/units.py",
                "def run_for_ns(target, duration_ns):\n    pass\n",
            ),
            (
                "src/repro/experiments/demo.py",
                "from repro.sim.units import run_for_ns\n"
                "def go(cell):\n"
                "    run_for_ns(cell, 5)\n",
            ),
        )
        graph = program.call_graph()
        assert graph["repro.experiments.demo.go"] == (
            "repro.sim.units.run_for_ns",
        )

    def test_self_method_resolution_follows_bases(self):
        program = program_of(
            (
                "src/repro/cell/base.py",
                "class Base:\n"
                "    def helper(self):\n"
                "        pass\n",
            ),
            (
                "src/repro/cell/derived.py",
                "from repro.cell.base import Base\n"
                "class Derived(Base):\n"
                "    def run(self):\n"
                "        self.helper()\n",
            ),
        )
        graph = program.call_graph()
        assert graph["repro.cell.derived.Derived.run"] == (
            "repro.cell.base.Base.helper",
        )

    def test_constructor_resolves_to_init(self):
        program = program_of(
            (
                "src/repro/apps/thing.py",
                "class Thing:\n"
                "    def __init__(self, x):\n"
                "        self.x = x\n",
            ),
            (
                "src/repro/experiments/use.py",
                "from repro.apps.thing import Thing\n"
                "def make():\n"
                "    return Thing(1)\n",
            ),
        )
        graph = program.call_graph()
        assert graph["repro.experiments.use.make"] == (
            "repro.apps.thing.Thing.__init__",
        )

    def test_import_graph_edges(self):
        program = program_of(
            ("src/repro/sim/units.py", "SECOND = 10**9\n"),
            (
                "src/repro/cell/deployment.py",
                "from repro.sim.units import SECOND\n",
            ),
        )
        graph = program.import_graph()
        assert graph["repro.cell.deployment"] == ("repro.sim.units",)
        assert graph["repro.sim.units"] == ()

    def test_whole_package_program_builds(self):
        report = lint_report([PACKAGE])
        program = report.program
        assert program is not None
        assert "repro.sim.engine" in program.modules
        assert "repro.cell.deployment" in program.modules
        # The call graph resolves a healthy share of program calls.
        graph = program.call_graph()
        resolved = sum(len(callees) for callees in graph.values())
        assert resolved > 200


class TestStreamOwnership:
    def test_namespace_head_heuristics(self):
        assert namespace_head("faults.link.fh") == "faults"
        assert namespace_head("phy3") == "phy"
        assert namespace_head("ue12.channel") == "ue"
        assert namespace_head("p4") == "p4"

    def test_declared_namespaces_cover_real_tree(self):
        heads = {ns.head for ns in NAMESPACES}
        assert {"faults", "phy", "ptp", "ue", "app", "perf", "fleet"} <= heads
        assert COMPOSITION_ROOTS == {"cell", "experiments"}

    def test_fleet_namespace_is_strict(self):
        fleet = next(ns for ns in NAMESPACES if ns.head == "fleet")
        assert fleet.strict
        assert fleet.owner == "fleet"

    def test_stream003_fleet_draw_outside_fleet_flagged(self):
        # ``fleet.*`` is strict: only the fleet subsystem may draw it.
        program = program_of(
            (
                "src/repro/ue/rogue.py",
                'def f(rng):\n    return rng.stream("fleet.tracers")\n',
            )
        )
        findings = run_program_rules(program)
        assert [f.rule_id for f in findings] == ["STREAM003"]

    def test_stream003_fleet_draw_inside_fleet_clean(self):
        program = program_of(
            (
                "src/repro/fleet/sampling.py",
                'def f(rng):\n    return rng.stream("fleet.tracers")\n',
            )
        )
        findings = run_program_rules(program)
        assert not [f for f in findings if f.rule_id == "STREAM003"]

    def test_stream004_cross_subsystem_collision(self):
        program = program_of(
            (
                "src/repro/apps/a.py",
                'def f(rng):\n    return rng.stream("app.shared")\n',
            ),
            (
                "src/repro/ue/b.py",
                'def g(rng):\n    return rng.stream("app.shared")\n',
            ),
        )
        findings = run_program_rules(program)
        collisions = [f for f in findings if f.rule_id == "STREAM004"]
        assert len(collisions) == 2  # one finding at each site
        assert {f.path for f in collisions} == {
            "src/repro/apps/a.py",
            "src/repro/ue/b.py",
        }

    def test_stream004_private_registry_does_not_collide(self):
        program = program_of(
            (
                "src/repro/apps/a.py",
                "from repro.sim.rng import RngRegistry\n"
                "def f():\n"
                '    return RngRegistry(seed=0).stream("app.shared")\n',
            ),
            (
                "src/repro/ue/b.py",
                'def g(rng):\n    return rng.stream("app.shared")\n',
            ),
        )
        findings = run_program_rules(program)
        assert not [f for f in findings if f.rule_id == "STREAM004"]

    def test_prefix_sites_collide_with_exact_names(self):
        program = program_of(
            (
                "src/repro/apps/a.py",
                "def f(rng, i):\n"
                '    return rng.stream(f"app.flow{i}")\n',
            ),
            (
                "src/repro/ue/b.py",
                'def g(rng):\n    return rng.stream("app.flow3")\n',
            ),
        )
        findings = run_program_rules(program)
        assert [f for f in findings if f.rule_id == "STREAM004"]

    def test_real_tree_has_no_stream_findings(self):
        report = lint_report([PACKAGE])
        assert not [
            f for f in report.findings if f.rule_id.startswith("STREAM")
        ]

    def test_ownership_map_of_real_tree(self):
        report = lint_report([PACKAGE])
        mapping = ownership_map(report.program)
        # Prefix sites are keyed with a trailing *.
        assert mapping["faults.link.*"]["owner"] == "faults"
        assert mapping["phy*"]["owner"] == "cell"
        assert mapping["app.video.*"]["owner"] == "apps"
        # The fleet tracer-sampling stream is owned by the fleet package.
        fleet_row = mapping["fleet.tracers"]
        assert fleet_row["owner"] == "fleet"
        assert [s["module"] for s in fleet_row["sites"]] == [
            "repro.fleet.population"
        ]
        # The property-generation stream stays inside the faults family.
        prop_row = mapping["faults.prop"]
        assert prop_row["owner"] == "faults"
        assert [s["module"] for s in prop_row["sites"]] == [
            "repro.faults.proptest"
        ]
        for entry in mapping.values():
            assert entry["owner"] is not None

    def test_every_real_site_is_static(self):
        report = lint_report([PACKAGE])
        for site in stream_sites(report.program):
            assert site.name, f"unresolvable stream name at {site.path}:{site.line}"


class TestStateInventory:
    def test_inventory_is_deterministic(self):
        report = lint_report([PACKAGE])
        first = build_inventory(report.program)
        second = build_inventory(lint_report([PACKAGE]).program)
        assert first == second

    def test_inventory_pinned_in_benchmarks(self):
        pinned_path = REPO_ROOT / "benchmarks" / "state_inventory.json"
        assert pinned_path.exists(), (
            "benchmarks/state_inventory.json missing; regenerate with "
            "`python -m repro lint --state-inventory "
            "benchmarks/state_inventory.json`"
        )
        pinned = json.loads(pinned_path.read_text())
        report = lint_report([PACKAGE])
        assert build_inventory(report.program) == pinned

    def test_inventory_shape(self):
        report = lint_report([PACKAGE])
        inventory = build_inventory(report.program)
        totals = inventory["totals"]
        assert totals["unregistered"] == 0
        assert totals["checkpointable"] > 100
        assert totals["classes"] > 30
        engine = inventory["classes"]["repro.sim.engine.Simulator"]
        assert engine["subsystem"] == "sim"
        assert "_now" in engine["checkpointable"]
        assert "_queue" in engine["checkpointable"]


class TestStrictSuppressions:
    def test_stale_line_directive_flagged(self):
        from repro.analysis.runner import _run_over_contexts

        context = ctx(
            "x = 1  # slinglint: disable=DET001\n",
            "src/repro/sim/demo.py",
        )
        findings = _run_over_contexts(
            [context], strict_suppressions=True
        ).findings
        assert [f.rule_id for f in findings] == ["SUP001"]

    def test_used_directive_not_flagged(self):
        from repro.analysis.runner import _run_over_contexts

        context = ctx(
            "import time\n"
            "start = time.time()  # slinglint: disable=DET001\n",
            "src/repro/sim/demo.py",
        )
        findings = _run_over_contexts(
            [context], strict_suppressions=True
        ).findings
        assert findings == []

    def test_stale_file_directive_flagged(self):
        from repro.analysis.runner import _run_over_contexts

        context = ctx(
            "# slinglint: disable-file=DET002\nx = 1\n",
            "src/repro/sim/demo.py",
        )
        findings = _run_over_contexts(
            [context], strict_suppressions=True
        ).findings
        assert [f.rule_id for f in findings] == ["SUP001"]
        assert findings[0].line == 1

    def test_program_rule_suppression_counts_as_used(self):
        from repro.analysis.runner import _run_over_contexts

        context = ctx(
            "def f(rng, name):\n"
            "    return rng.stream(name)  # slinglint: disable=STREAM001\n",
            "src/repro/faults/demo.py",
        )
        findings = _run_over_contexts(
            [context], strict_suppressions=True
        ).findings
        assert findings == []

    def test_real_tree_passes_strict_suppressions(self):
        report = lint_report([PACKAGE], strict_suppressions=True)
        assert report.findings == []


class TestDiscovery:
    def test_pycache_and_hidden_dirs_skipped(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / ".hidden").mkdir()
        (tmp_path / "pkg" / ".hidden" / "other.py").write_text("x = 1\n")
        (tmp_path / "pkg" / ".dotfile.py").write_text("x = 1\n")
        files = discover_files([tmp_path])
        assert [f.name for f in files] == ["mod.py"]

    def test_overlapping_arguments_deduplicated(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        target = tmp_path / "pkg" / "mod.py"
        target.write_text("x = 1\n")
        files = discover_files([tmp_path, tmp_path / "pkg", target])
        assert len(files) == 1


class TestRuleCatalog:
    #: Golden catalog: (id, severity, title). Adding a rule means
    #: extending this pin in the same change.
    EXPECTED = [
        ("CKPT001", "error", "mutable attribute not initialized in __init__"),
        ("CKPT002", "warning", "stale _checkpoint_derived_ declaration"),
        (
            "CKPT003",
            "error",
            "checkpoint manifest out of sync with state inventory",
        ),
        ("DET001", "error", "wall-clock read"),
        ("DET002", "error", "stdlib random import"),
        ("DET003", "error", "private numpy generator"),
        ("DET004", "error", "numpy global RNG"),
        ("EVT001", "error", "loop-variable capture in scheduled callback"),
        ("EVT002", "warning", "zero-delay scheduling"),
        ("OBS001", "error", "wall clock / randomness in telemetry code"),
        ("P4R001", "error", "pipeline resource budget exceeded"),
        ("P4R002", "error", "too many match-action tables"),
        ("P4R003", "error", "register accessed too often in one pass"),
        ("PAR001", "error", "shard-worker purity violation"),
        ("PERF001", "error", "direct time.* use in perf package"),
        ("PERF002", "error", "periodic self-reschedule through the heap"),
        ("STREAM001", "error", "stream name not statically resolvable"),
        (
            "STREAM002",
            "error",
            "stream namespace not declared in the ownership table",
        ),
        ("STREAM003", "error", "cross-subsystem stream draw"),
        ("STREAM004", "error", "stream name drawn from multiple subsystems"),
        ("SUP001", "warning", "unused suppression directive"),
        ("TIM001", "error", "float simulated time"),
        ("TIM002", "warning", "magic-number duration"),
        (
            "TIM003",
            "error",
            "float-seconds identifier crossing the engine boundary",
        ),
        (
            "TIMX001",
            "error",
            "interprocedural float-seconds flow into the scheduler",
        ),
        ("TIMX002", "error", "float-seconds value bound to a *_ns name"),
    ]

    def test_catalog_matches_golden_list(self):
        lines = rule_catalog().splitlines()
        parsed = [
            (line[:10].strip(), line[10:18].strip(), line[18:].strip())
            for line in lines
        ]
        assert parsed == self.EXPECTED

    def test_cli_list_rules_exit_code(self, capsys):
        from repro.analysis.runner import main

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "STREAM001" in out and "CKPT001" in out

    def test_budget_constant_sane(self):
        assert 0 < LINT_BUDGET_SECONDS <= 60
