"""Tests for the network substrate: MACs, frames, links, switch."""

import pytest

from repro.net.addresses import BROADCAST_MAC, MacAddress, MacAllocator
from repro.net.link import DuplexLink, Link
from repro.net.packet import EtherType, EthernetFrame, MIN_FRAME_BYTES
from repro.net.switch import StaticL2Pipeline, Switch
from repro.sim.engine import Simulator


class Collector:
    """Test endpoint recording (time, frame) arrivals."""

    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def receive_frame(self, frame, ingress):
        self.received.append((self.sim.now, frame))


def make_frame(src=1, dst=2, payload="x", wire_bytes=100):
    return EthernetFrame(
        src=MacAddress(src),
        dst=MacAddress(dst),
        ethertype=EtherType.IPV4,
        payload=payload,
        wire_bytes=wire_bytes,
    )


class TestMacAddress:
    def test_parse_and_format(self):
        mac = MacAddress.from_string("02:00:00:00:00:2a")
        assert int(mac) == 0x02_00_00_00_00_2A
        assert str(mac) == "02:00:00:00:00:2a"

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)

    def test_malformed_string_rejected(self):
        with pytest.raises(ValueError):
            MacAddress.from_string("02:00:00")

    def test_allocator_unique(self):
        allocator = MacAllocator()
        addresses = {allocator.allocate() for _ in range(100)}
        assert len(addresses) == 100

    def test_broadcast_is_all_ones(self):
        assert int(BROADCAST_MAC) == (1 << 48) - 1


class TestFrames:
    def test_minimum_size_enforced(self):
        frame = make_frame(wire_bytes=10)
        assert frame.wire_bytes == MIN_FRAME_BYTES

    def test_copy_to_rewrites_destination_only(self):
        frame = make_frame()
        copy = frame.copy_to(MacAddress(99))
        assert copy.dst == MacAddress(99)
        assert copy.src == frame.src
        assert copy.payload is frame.payload


class TestLink:
    def test_latency_applied(self):
        sim = Simulator()
        sink = Collector(sim)
        link = Link(sim, sink, bandwidth_bps=0, latency_ns=5000)
        link.send(make_frame())
        sim.run()
        assert sink.received[0][0] == 5000

    def test_serialization_delay(self):
        sim = Simulator()
        sink = Collector(sim)
        # 1 Gbps: 1000 bytes = 8 us.
        link = Link(sim, sink, bandwidth_bps=1e9, latency_ns=0)
        link.send(make_frame(wire_bytes=1000))
        sim.run()
        assert sink.received[0][0] == 8000

    def test_fifo_back_to_back(self):
        sim = Simulator()
        sink = Collector(sim)
        link = Link(sim, sink, bandwidth_bps=1e9, latency_ns=100)
        link.send(make_frame(wire_bytes=1000))
        link.send(make_frame(wire_bytes=1000))
        sim.run()
        times = [t for t, _ in sink.received]
        assert times == [8100, 16100]

    def test_counters(self):
        sim = Simulator()
        link = Link(sim, Collector(sim))
        link.send(make_frame(wire_bytes=100))
        link.send(make_frame(wire_bytes=200))
        assert link.frames_sent == 2
        assert link.bytes_sent == 300

    def test_unconnected_link_raises(self):
        sim = Simulator()
        link = Link(sim, None)
        with pytest.raises(RuntimeError):
            link.send(make_frame())

    def test_duplex_wiring(self):
        sim = Simulator()
        a, b = Collector(sim), Collector(sim)
        duplex = DuplexLink(sim, latency_ns=10)
        duplex.connect(a, b)
        duplex.forward.send(make_frame(payload="to-b"))
        duplex.reverse.send(make_frame(payload="to-a"))
        sim.run()
        assert b.received[0][1].payload == "to-b"
        assert a.received[0][1].payload == "to-a"


class TestSwitch:
    def _build(self):
        sim = Simulator()
        switch = Switch(sim, pipeline_latency_ns=100)
        hosts = []
        for i in range(3):
            host = Collector(sim)
            port = switch.attach(host, latency_ns=10, name=f"h{i}")
            hosts.append((host, port))
        return sim, switch, hosts

    def test_static_forwarding(self):
        sim, switch, hosts = self._build()
        pipeline = switch.pipeline
        pipeline.learn(MacAddress(2), hosts[1][1].number)
        hosts[0][1].ingress_link.send(make_frame(src=1, dst=2))
        sim.run()
        assert len(hosts[1][0].received) == 1
        assert len(hosts[2][0].received) == 0

    def test_unknown_destination_dropped(self):
        sim, switch, hosts = self._build()
        hosts[0][1].ingress_link.send(make_frame(src=1, dst=77))
        sim.run()
        assert switch.frames_dropped == 1

    def test_broadcast_floods_other_ports(self):
        sim, switch, hosts = self._build()
        frame = EthernetFrame(
            src=MacAddress(1), dst=BROADCAST_MAC,
            ethertype=EtherType.IPV4, payload="b",
        )
        hosts[0][1].ingress_link.send(frame)
        sim.run()
        assert len(hosts[0][0].received) == 0
        assert len(hosts[1][0].received) == 1
        assert len(hosts[2][0].received) == 1

    def test_pipeline_latency_added(self):
        sim, switch, hosts = self._build()
        switch.pipeline.learn(MacAddress(2), hosts[1][1].number)
        hosts[0][1].ingress_link.send(make_frame(src=1, dst=2, wire_bytes=64))
        sim.run()
        arrival = hosts[1][0].received[0][0]
        # ~10ns + serialization in, 100ns pipeline, ~10ns + serialization out.
        assert arrival > 120

    def test_duplicate_port_number_rejected(self):
        sim = Simulator()
        switch = Switch(sim)
        switch.add_port(5)
        with pytest.raises(ValueError):
            switch.add_port(5)

    def test_inject_runs_pipeline(self):
        sim, switch, hosts = self._build()
        switch.pipeline.learn(MacAddress(2), hosts[1][1].number)
        switch.inject(make_frame(src=9, dst=2))
        sim.run()
        assert len(hosts[1][0].received) == 1
