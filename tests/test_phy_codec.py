"""Tests for the PHY codec (full encode/channel/decode chain)."""

import numpy as np
import pytest

from repro.phy.channel import ChannelRealization
from repro.phy.codec import PhyCodec
from repro.phy.modulation import Modulation
from repro.phy.transport import LinkDirection, TransportBlock


def make_block(ue_id=1, harq=0, modulation=Modulation.QAM16, tb_id=None, **kwargs):
    extra = {}
    if tb_id is not None:
        extra["tb_id"] = tb_id
    return TransportBlock(
        ue_id=ue_id,
        direction=LinkDirection.UPLINK,
        harq_process=harq,
        modulation=modulation,
        prbs=100,
        data=b"payload",
        **kwargs,
        **extra,
    )


@pytest.fixture
def codec():
    return PhyCodec(np.random.default_rng(0), decoder_iterations=8)


class TestDecodeChain:
    def test_good_snr_decodes_and_returns_payload(self, codec):
        block = make_block()
        outcome = codec.decode_block(block, ChannelRealization(snr_db=16.0))
        assert outcome.crc_ok
        assert outcome.data == b"payload"
        assert outcome.ue_id == 1

    def test_terrible_snr_fails_crc(self, codec):
        block = make_block(modulation=Modulation.QAM64)
        outcome = codec.decode_block(block, ChannelRealization(snr_db=-2.0))
        assert not outcome.crc_ok
        assert outcome.data is None

    def test_stats_track_failures(self, codec):
        codec.decode_block(make_block(), ChannelRealization(snr_db=16.0))
        codec.decode_block(
            make_block(modulation=Modulation.QAM64, harq=1),
            ChannelRealization(snr_db=-2.0),
        )
        assert codec.stats.blocks_decoded == 2
        assert codec.stats.crc_failures == 1
        assert codec.stats.block_error_rate == pytest.approx(0.5)

    def test_measured_snr_near_true_snr(self, codec):
        outcomes = [
            codec.decode_block(
                make_block(harq=i % 8), ChannelRealization(snr_db=14.0)
            )
            for i in range(20)
        ]
        measured = np.mean([o.measured_snr_db for o in outcomes])
        assert measured == pytest.approx(14.0, abs=0.5)

    def test_representative_bits_stable_across_retransmissions(self, codec):
        block = make_block()
        retx = block.retransmission(slot=10)
        assert np.array_equal(
            codec.representative_bits(block), codec.representative_bits(retx)
        )

    def test_harq_retransmission_rescues_marginal_block(self):
        """At a marginally-bad SNR, chase combining across a
        retransmission lifts decode success (the §4.2 machinery)."""
        rng = np.random.default_rng(42)
        single_ok = 0
        combined_ok = 0
        trials = 12
        for trial in range(trials):
            codec = PhyCodec(np.random.default_rng(trial), decoder_iterations=8)
            snr = ChannelRealization(snr_db=7.2)
            block = make_block(tb_id=10_000 + trial)
            first = codec.decode_block(block, snr)
            if first.crc_ok:
                single_ok += 1
                continue
            retx = block.retransmission(slot=5)
            second = codec.decode_block(retx, snr)
            if second.crc_ok:
                combined_ok += 1
        assert combined_ok > 0  # Combining rescued some failures.

    def test_success_releases_harq_buffer(self, codec):
        codec.decode_block(make_block(), ChannelRealization(snr_db=16.0))
        assert codec.harq.occupied_count() == 0

    def test_failure_retains_harq_buffer(self, codec):
        codec.decode_block(
            make_block(modulation=Modulation.QAM64), ChannelRealization(snr_db=-2.0)
        )
        assert codec.harq.occupied_count() == 1


class TestGarbageDecode:
    def test_garbage_always_fails(self, codec):
        for i in range(5):
            outcome = codec.decode_garbage(make_block(harq=i))
            assert not outcome.crc_ok
        assert codec.stats.garbage_decodes == 5

    def test_garbage_does_not_pollute_harq_buffer(self, codec):
        """DMRS gating: a slot with no detectable transmission reports a
        failure but leaves the soft buffer untouched, so later genuine
        retransmissions combine cleanly."""
        block = make_block()
        codec.decode_garbage(block)
        assert not codec.harq.buffer(1, 0).occupied

    def test_retx_after_garbage_decodes_cleanly(self, codec):
        """A retransmission following a DTX slot behaves like a fresh
        transmission at the channel's true quality."""
        block = make_block(tb_id=77_000)
        codec.decode_garbage(block)
        retx = block.retransmission(slot=9)
        outcome = codec.decode_block(retx, ChannelRealization(snr_db=16.0))
        assert outcome.crc_ok


class TestIterationsKnob:
    def test_iteration_budget_changes_bler_near_threshold(self):
        def bler(iterations, trials=25):
            failures = 0
            for trial in range(trials):
                codec = PhyCodec(
                    np.random.default_rng(trial), decoder_iterations=iterations
                )
                block = make_block(tb_id=50_000 + trial)
                outcome = codec.decode_block(block, ChannelRealization(snr_db=9.7))
                if not outcome.crc_ok:
                    failures += 1
            return failures / trials

        assert bler(1) > bler(12)
