"""Fleet composer tests: budget, pool semantics, tracer differential,
property-based chaos, accounting regression, scale, and the check gate.

The two hardening pillars of this suite:

* **Differential** — a fleet-embedded tracer cell must produce a trace
  byte-identical to a standalone single-cell run of the same config
  (island-cell property), including the per-UE canonical lines.
* **Property-based** — ~50 randomized mini-fleet chaos cases from the
  reserved ``faults.prop`` stream, each judged against greedy-token
  expectations and the standard :class:`RecoveryInvariants`, including
  same-instant pool contention (exactly-once promotion, no
  double-assign).
"""

from __future__ import annotations

import pytest

from repro.cell.deployment import build_slingshot_cell
from repro.faults.injector import FaultInjector
from repro.faults.invariants import RecoveryInvariants
from repro.faults.plan import FaultPlan, ProcessFaultSpec
from repro.faults.proptest import (
    PROP_REWARM_NS,
    PROP_RUN_END_NS,
    generate_cases,
)
from repro.fleet import (
    FleetBudgetError,
    FleetConfig,
    build_fleet,
    fleet_cell_seed,
    validate_fleet_budget,
)
from repro.fleet.campaign import main as fleet_main
from repro.fleet.campaign import run_fleet_campaign
from repro.perf.sampler import PopSampler
from repro.sim.trace import TraceRecorder
from repro.sim.units import MS


def _commits(cell) -> int:
    return cell.trace.count("mbox.migration_committed")


def _impossible(cell) -> int:
    return cell.trace.count("orion.failover_impossible")


def _source_transitions(cell) -> int:
    return sum(
        1
        for e in cell.trace.events("ru.source_changed")
        if e.get("previous") is not None
    )


# ----------------------------------------------------------------------
# P4 budget validation
# ----------------------------------------------------------------------
class TestFleetBudget:
    def test_hundred_cells_fit_the_envelope(self):
        usage = validate_fleet_budget(100, phys_per_cell=2)
        assert all(fraction < 1.0 for fraction in usage.fraction.values())

    def test_oversized_fleet_is_rejected_with_every_overflow_listed(self):
        with pytest.raises(FleetBudgetError) as excinfo:
            validate_fleet_budget(300, phys_per_cell=2)
        message = str(excinfo.value)
        assert "300 RUs" in message
        assert "600 PHYs" in message

    def test_build_fleet_validates_before_building(self):
        with pytest.raises(FleetBudgetError):
            build_fleet(FleetConfig(num_cells=200))

    def test_cell_seeds_are_distinct_and_stable(self):
        seeds = [fleet_cell_seed(5, i) for i in range(100)]
        assert len(set(seeds)) == 100
        assert seeds == [fleet_cell_seed(5, i) for i in range(100)]


# ----------------------------------------------------------------------
# Pool semantics (deterministic unit scenarios)
# ----------------------------------------------------------------------
class TestPooledStandby:
    def _mini_fleet(self, pool_size: int, rewarm_ns: int = 10_000 * MS):
        return build_fleet(
            FleetConfig(
                seed=11,
                num_cells=3,
                standby_pool_size=pool_size,
                users_per_cell=50,
                rewarm_ns=rewarm_ns,
            )
        )

    def test_single_token_grants_first_failure_denies_second(self):
        harness = self._mini_fleet(pool_size=1)
        harness.kill_cell_primary_at(0, 60 * MS)
        harness.kill_cell_primary_at(1, 80 * MS)
        harness.run_until(120 * MS)
        assert harness.pool.promotions == 1
        assert harness.pool.exhaustions == 1
        assert _commits(harness.cells[0]) == 1
        assert _impossible(harness.cells[0]) == 0
        assert _commits(harness.cells[1]) == 0
        assert _impossible(harness.cells[1]) == 1
        assert _commits(harness.cells[2]) == 0
        # The fleet trace records both pool decisions.
        assert harness.trace.count("fleet.pool.promoted") == 1
        assert harness.trace.count("fleet.pool.exhausted") == 1

    def test_rewarmed_seat_absorbs_a_later_failure(self):
        harness = self._mini_fleet(pool_size=1, rewarm_ns=20 * MS)
        harness.kill_cell_primary_at(0, 60 * MS)
        harness.kill_cell_primary_at(1, 100 * MS)
        harness.run_until(140 * MS)
        assert harness.pool.promotions == 2
        assert harness.pool.exhaustions == 0
        assert harness.pool.rewarmed >= 1
        # Satellite-4 consistency: one RU source flip per commit, and
        # the reclaimed seat never double-assigns.
        for cell in harness.cells:
            assert _source_transitions(cell) == _commits(cell)
            assert _commits(cell) <= 1

    def test_denied_cell_recovers_only_through_operator_revival(self):
        harness = self._mini_fleet(pool_size=0)
        harness.kill_cell_primary_at(0, 60 * MS)
        harness.run_until(100 * MS)
        assert _impossible(harness.cells[0]) == 1
        assert harness.population.cell_down[0] is True
        # Operator revival: re-initialize the dead server as standby.
        cell = harness.cells[0]
        cell.phy_servers[0].phy.restart()
        cell.l2_orion.initialize_secondary(0, 0)
        harness.run_until(120 * MS)
        assert cell.l2_orion.cells[0].secondary_phy == 0

    def test_population_degrades_and_recovers_with_the_cell(self):
        harness = self._mini_fleet(pool_size=1)
        harness.kill_cell_primary_at(0, 60 * MS)
        harness.run_until(200 * MS)
        summary = harness.population.summary()
        # The promoted cell was down for well under one 10 ms epoch, so
        # every epoch after recovery serves all users again.
        assert summary["degraded_user_epochs"] <= 50
        assert summary["served_user_epochs"] > 0
        assert harness.population.cell_down[0] is False


# ----------------------------------------------------------------------
# Tracer-UE differential (satellite 1)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestTracerDifferential:
    HORIZON_NS = 300 * MS

    def test_tracer_cell_is_byte_identical_to_standalone_run(self):
        config = FleetConfig(
            seed=7,
            num_cells=4,
            standby_pool_size=1,
            users_per_cell=1_000,
            tracer_cells=1,
        )
        harness = build_fleet(config)
        assert len(harness.tracer_indices) == 1
        tracer_index = harness.tracer_indices[0]
        harness.run_until(self.HORIZON_NS)

        standalone = build_slingshot_cell(
            config.cell_config(tracer_index, tracer=True)
        )
        standalone.run_until(self.HORIZON_NS)

        fleet_cell = harness.cells[tracer_index]
        assert fleet_cell.trace.digest() == standalone.trace.digest()

        # Per-UE canonical lines, byte for byte. The tracer cell runs
        # the full default UE population; every cohort-modelled cell
        # runs none.
        assert len(fleet_cell.ues) == 3
        for other_index, other in enumerate(harness.cells):
            if other_index != tracer_index:
                assert not other.ues
        for ue_id in sorted(fleet_cell.ues):
            fleet_lines = self._ue_lines(fleet_cell.trace, ue_id)
            standalone_lines = self._ue_lines(standalone.trace, ue_id)
            assert fleet_lines, f"no per-UE events for UE {ue_id}"
            assert fleet_lines == standalone_lines

    @staticmethod
    def _ue_lines(trace, ue_id: int) -> list:
        return [
            TraceRecorder._line(e)
            for e in trace.canonical_events()
            if e.get("ue") == ue_id
        ]

    def test_tracer_sampling_is_seeded_by_the_fleet_stream(self):
        config = FleetConfig(seed=7, num_cells=8, tracer_cells=2)
        first = build_fleet(config).tracer_indices
        second = build_fleet(config).tracer_indices
        assert first == second
        assert len(first) == 2


# ----------------------------------------------------------------------
# Property-based chaos (satellite 2)
# ----------------------------------------------------------------------
CASES = generate_cases()


@pytest.mark.slow
class TestPoolProperties:
    @pytest.mark.parametrize("case", CASES, ids=lambda c: f"case{c.case_id}")
    def test_generated_case_matches_greedy_token_expectation(self, case):
        harness = build_fleet(
            FleetConfig(
                seed=1_000 + case.case_id,
                num_cells=case.num_cells,
                standby_pool_size=case.pool_size,
                users_per_cell=50,
                rewarm_ns=PROP_REWARM_NS,
            )
        )
        for cell_index in range(case.num_cells):
            plan = case.plan_for(cell_index)
            if plan is not None:
                FaultInjector(harness.cells[cell_index], plan).arm()
        harness.run_until(PROP_RUN_END_NS)

        pool = harness.pool
        assert pool.promotions == case.expected_promotions
        assert pool.exhaustions == case.expected_exhaustions
        assert pool.rewarmed == 0  # Re-warm sits past the horizon.
        total_commits = sum(_commits(cell) for cell in harness.cells)
        total_impossible = sum(_impossible(cell) for cell in harness.cells)
        assert total_commits == pool.promotions
        assert total_impossible == pool.exhaustions
        for cell in harness.cells:
            assert _commits(cell) <= 1  # Never double-assigned.
            assert _source_transitions(cell) == _commits(cell)

        if case.contention:
            # Same-instant failures against one token: which cell wins
            # is tie-order dependent by design; only counts are pinned.
            assert pool.promotions == min(len(case.faults), case.pool_size)
            return
        promoted = set(case.expected_promoted)
        for cell_index, spec in case.faults:
            cell = harness.cells[cell_index]
            won = cell_index in promoted
            checker = RecoveryInvariants(
                cell.trace.canonical_events(),
                window_start_ns=0,
                window_end_ns=PROP_RUN_END_NS,
                downtime_budget_ns=None,
                expected_migrations=1 if won else 0,
                expect_failover_impossible=not won,
            )
            results = {r.name: r for r in checker.check_all()}
            label = f"case {case.case_id} cell {cell_index} (promoted={won})"
            for name in ("exactly_once_migration", "degraded_mode_visible"):
                assert results[name].passed, f"{label}: {results[name].detail}"
            if won and spec.kind == "hang":
                # Known tight-margin artifact the property pass surfaced:
                # a *hung* PHY keeps transmitting fronthaul DL, and with
                # failover_slot_margin=1 its in-flight frame for the
                # boundary slot can reach the RU alongside the new
                # primary's. Bound it to exactly that one slot.
                self._assert_at_most_boundary_conflict(cell, label)
            else:
                assert results["no_stale_frames"].passed, (
                    f"{label}: {results['no_stale_frames'].detail}"
                )

    @staticmethod
    def _assert_at_most_boundary_conflict(cell, label: str) -> None:
        conflicts = cell.trace.events("ru.conflicting_sources")
        assert len(conflicts) <= 1, f"{label}: {len(conflicts)} conflicts"
        assert cell.trace.count("ru.conflicting_sources") == len(conflicts)
        if conflicts:
            commit = cell.trace.events("mbox.migration_committed")[0]
            assert conflicts[0]["slot"] == commit["slot"], (
                f"{label}: conflict at slot {conflicts[0]['slot']} is not "
                f"the migration boundary slot {commit['slot']}"
            )

    def test_generation_is_deterministic_and_covers_contention(self):
        again = generate_cases()
        assert again == CASES
        contention = [c for c in CASES if c.contention]
        assert len(contention) == 10
        assert any(c.num_cells >= 3 for c in contention)
        assert any(c.link_dup is not None for c in CASES)
        assert any(c.pool_size == 0 for c in CASES if not c.contention)


# ----------------------------------------------------------------------
# Pool-exhaustion accounting regression at --jobs 1 and 2 (satellite 4)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestAccountingRegression:
    def test_rewarm_reclaim_accounting_is_jobs_invariant(self):
        reports = {
            jobs: run_fleet_campaign(
                fault_classes=("second_wave",),
                pool_sizes=(1,),
                seeds=(1,),
                jobs=jobs,
            )
            for jobs in (1, 2)
        }
        serial = reports[1].runs[0]
        # The reclaim shape: wave 1 takes the token (2 denials), the
        # re-warmed seat absorbs one wave-2 failure (1 more denial).
        assert serial.pool["promotions"] == 2
        assert serial.pool["exhaustions"] == 3
        assert serial.pool["rewarmed"] == 2
        assert serial.migrations_committed == 2
        assert serial.failovers_impossible == 3
        assert serial.source_transitions == 2
        assert serial.accounting["consistent"], serial.accounting["problems"]
        assert serial.passed
        # Bit-identical verdicts and digests across jobs values.
        assert reports[2].runs[0].as_dict() == serial.as_dict()


# ----------------------------------------------------------------------
# Scale: per-slot work bounded by cells, not users
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestFleetScale:
    def test_event_count_is_independent_of_cohort_population(self):
        def events_for(users_per_cell: int) -> int:
            harness = build_fleet(
                FleetConfig(
                    seed=3, num_cells=20, users_per_cell=users_per_cell
                )
            )
            harness.run_until(30 * MS)
            return harness.sim.events_processed

        assert events_for(10) == events_for(100_000)

    def test_hundred_cell_million_user_sweep_bills_cells_not_users(self):
        harness = build_fleet(
            FleetConfig(seed=4, num_cells=100, users_per_cell=10_000)
        )
        assert harness.population.total_users() == 1_000_000
        with PopSampler(every=4) as sampler:
            harness.run_until(30 * MS)
        shares = sampler.shares()
        assert sampler.sampled_events > 0
        # No per-UE machinery runs at all (cohorts are aggregate), and
        # the population model's once-per-epoch tick is a rounding error
        # next to the per-cell PHY/fronthaul work.
        assert shares.get("repro.ue", 0.0) < 0.01
        assert shares.get("repro.fleet", 0.0) < 0.10


# ----------------------------------------------------------------------
# CLI check gate + registry wiring (satellite 6)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestFleetCheckGate:
    def test_fleet_check_quick_passes(self, capsys):
        exit_code = fleet_main(["--check", "--quick", "--jobs", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0, out
        assert "fleet check passed" in out


class TestFleetRegistration:
    def test_fleet_is_a_registered_experiment(self):
        from repro.experiments import REGISTRY

        spec = REGISTRY["fleet"]
        assert callable(spec.module.run)
        assert callable(spec.module.summarize)

    def test_fleet_is_a_cli_harness_verb(self):
        from repro.cli import _HARNESS_VERBS

        assert "fleet" in _HARNESS_VERBS
