"""Tests for the massive-MIMO beamforming-state extension (§10)."""

import pytest

from repro.phy.mimo import BeamformingTracker, MimoConfig


class TestBeamformingTracker:
    def test_untracked_ue_has_no_gain(self):
        tracker = BeamformingTracker()
        assert tracker.gain_db(1, slot=100) == 0.0

    def test_gain_grows_with_soundings(self):
        tracker = BeamformingTracker()
        gains = [tracker.on_sounding(1, slot) for slot in range(0, 100, 5)]
        assert gains == sorted(gains)
        assert gains[-1] > gains[0]

    def test_gain_converges_near_array_gain(self):
        """Steady-state gain balances estimation against channel aging:
        it converges to a large fraction of the ideal array gain (not
        all of it — estimates are always slightly stale)."""
        config = MimoConfig(num_antennas=64)
        tracker = BeamformingTracker(config)
        for slot in range(0, 2000, 5):
            tracker.on_sounding(1, slot)
        steady = tracker.gain_db(1, 2000)
        assert 0.75 * config.max_gain_db < steady <= config.max_gain_db

    def test_64_antennas_give_18db_ideal(self):
        assert MimoConfig(num_antennas=64).max_gain_db == pytest.approx(18.06, abs=0.1)

    def test_estimates_age_without_sounding(self):
        config = MimoConfig(aging_half_life_slots=100)
        tracker = BeamformingTracker(config)
        for slot in range(0, 500, 5):
            tracker.on_sounding(1, slot)
        fresh = tracker.gain_db(1, 500)
        stale = tracker.gain_db(1, 500 + 100)
        assert stale == pytest.approx(fresh / 2, rel=0.05)

    def test_discard_models_migration(self):
        tracker = BeamformingTracker()
        for slot in range(0, 200, 5):
            tracker.on_sounding(1, slot)
            tracker.on_sounding(2, slot)
        assert tracker.state_bytes() > 0
        affected = tracker.discard_all()
        assert affected == 2
        assert tracker.gain_db(1, 200) == 0.0
        assert tracker.state_bytes() == 0

    def test_reconvergence_takes_tens_of_soundings(self):
        """The paper's 'tens to hundreds of slots' horizon."""
        config = MimoConfig()
        tracker = BeamformingTracker(config)
        for slot in range(0, 1000, 5):
            tracker.on_sounding(1, slot)
        tracker.discard_all()
        soundings = 0
        slot = 1000
        while tracker.gain_db(1, slot) < 0.8 * config.max_gain_db:
            slot += 5
            tracker.on_sounding(1, slot)
            soundings += 1
            assert soundings < 500
        assert soundings >= 10

    def test_per_ue_state_independent(self):
        tracker = BeamformingTracker()
        for slot in range(0, 100, 5):
            tracker.on_sounding(1, slot)
        assert tracker.gain_db(1, 100) > 0.0
        assert tracker.gain_db(2, 100) == 0.0

    def test_state_bytes_scale_with_ues_and_antennas(self):
        small = BeamformingTracker(MimoConfig(num_antennas=4))
        large = BeamformingTracker(MimoConfig(num_antennas=64))
        for tracker in (small, large):
            tracker.on_sounding(1, 0)
        assert large.state_bytes() > small.state_bytes()


class TestPhyIntegration:
    def test_mimo_phy_lifts_effective_snr(self):
        """A UE unusable at its base SNR becomes decodable once the PHY's
        beamforming state converges."""
        from repro.cell.config import CellConfig, UeProfile
        from repro.cell.deployment import build_slingshot_cell
        from repro.sim.units import s_to_ns

        config = CellConfig(
            seed=60,
            ue_profiles=[
                UeProfile(ue_id=1, name="UE", mean_snr_db=1.0,
                          shadow_sigma_db=0.4, fade_probability=0.0)
            ],
            massive_mimo=True,
        )
        cell = build_slingshot_cell(config)
        cell.run_for(s_to_ns(0.6))
        primary = cell.phy_servers[0].phy
        now_slot = cell.slot_clock.slot_at(cell.sim.now)
        assert primary.beamforming is not None
        assert primary.beamforming.gain_db(1, now_slot) > 6.0
        # Uplink decodes succeed despite the 1 dB base channel.
        assert cell.l2.stats.ul_crc_ok > 0

    def test_soft_state_accounting_includes_beam_matrices(self):
        from repro.cell.config import CellConfig, UeProfile
        from repro.cell.deployment import build_slingshot_cell
        from repro.sim.units import s_to_ns

        config = CellConfig(
            seed=61,
            ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=5.0)],
            massive_mimo=True,
        )
        cell = build_slingshot_cell(config)
        cell.run_for(s_to_ns(0.4))
        primary = cell.phy_servers[0].phy
        bytes_before = primary.soft_state_bytes()
        assert bytes_before > 100_000  # Megabyte-scale matrices.
        primary.discard_soft_state()
        assert primary.soft_state_bytes() < bytes_before
