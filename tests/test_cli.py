"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.experiments import (
    REGISTRY,
    ExperimentSpec,
    get,
    register,
    registered_names,
)


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["nonsense"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_defaults_parse(self):
        args = build_parser().parse_args(["fig8"])
        assert args.experiment == "fig8"
        assert args.rates == [1.0, 10.0, 20.0, 50.0]

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["table2", "--duration", "5", "--rates", "1", "20", "--quick"]
        )
        assert args.duration == 5.0
        assert args.rates == [1.0, 20.0]
        assert args.quick


class TestExecution:
    def test_fig3_runs_end_to_end(self, capsys):
        assert main(["fig3", "--runs", "6"]) == 0
        out = capsys.readouterr().out
        assert "VM pause time" in out
        assert "crashed in 100%" in out

    def test_fig12_quick_runs(self, capsys):
        assert main(["fig12", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "one-way latency added by Orion" in out
        assert "3.4 Gbps" in out

    def test_every_experiment_is_wired(self):
        """Each registry entry references a callable and a description."""
        for name, (runner, description, _) in EXPERIMENTS.items():
            assert callable(runner), name
            assert description, name

class TestRegistry:
    """The CLI is derived from the Experiment registry, not hand-written."""

    def test_cli_table_round_trips_through_registry(self):
        assert list(EXPERIMENTS) == registered_names()
        for name, (_, description, duration) in EXPERIMENTS.items():
            spec = get(name)
            assert spec.name == name
            assert spec.description == description
            assert spec.default_duration_s == duration

    def test_list_output_matches_registered_names(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        listed = [
            line.split()[0]
            for line in out.splitlines()
            if line.startswith("  ") and line.split()
        ]
        for name in registered_names():
            assert name in listed

    def test_specs_satisfy_the_experiment_protocol(self):
        from repro.experiments import Experiment

        for spec in REGISTRY.values():
            assert isinstance(spec, Experiment), spec.name
            assert callable(spec.module.run), spec.name
            assert callable(spec.module.summarize), spec.name

    def test_default_params_reflect_run_signature(self):
        params = get("fig8").default_params
        assert "duration_s" in params
        assert params["duration_s"] == get("fig8").default_duration_s

    def test_duplicate_registration_rejected(self):
        spec = get("fig8")
        with pytest.raises(ValueError, match="registered twice"):
            register(spec)

    def test_cli_params_map_namespace_to_run_kwargs(self):
        args = build_parser().parse_args(["fig8"])
        from repro.cli import _defaults_for

        _defaults_for("fig8", args)
        kwargs = get("fig8").cli_params(args)
        assert set(kwargs) == {"duration_s", "failure_at_s"}
        run_params = set(
            __import__("inspect").signature(get("fig8").module.run).parameters
        )
        assert set(kwargs) <= run_params
