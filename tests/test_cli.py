"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["nonsense"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_defaults_parse(self):
        args = build_parser().parse_args(["fig8"])
        assert args.experiment == "fig8"
        assert args.rates == [1.0, 10.0, 20.0, 50.0]

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["table2", "--duration", "5", "--rates", "1", "20", "--quick"]
        )
        assert args.duration == 5.0
        assert args.rates == [1.0, 20.0]
        assert args.quick


class TestExecution:
    def test_fig3_runs_end_to_end(self, capsys):
        assert main(["fig3", "--runs", "6"]) == 0
        out = capsys.readouterr().out
        assert "VM pause time" in out
        assert "crashed in 100%" in out

    def test_fig12_quick_runs(self, capsys):
        assert main(["fig12", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "one-way latency added by Orion" in out
        assert "3.4 Gbps" in out

    def test_every_experiment_is_wired(self):
        """Each registry entry references a callable and a description."""
        for name, (runner, description, _) in EXPERIMENTS.items():
            assert callable(runner), name
            assert description, name
