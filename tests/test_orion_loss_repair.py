"""Tests for Orion's transport-loss repair (§6.1).

The inter-Orion UDP transport is stateless; lost datagrams would starve
the PHY of its mandatory per-slot TTI requests. The PHY-side Orion
detects slot-sequence gaps and injects null requests so the PHY's FAPI
contract holds through rare datacenter losses.
"""

import numpy as np
import pytest

from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.core.orion import OrionConfig, OrionDatagram, PhySideOrion
from repro.fapi.channels import ShmChannel
from repro.fapi.messages import DlTtiRequest, UlTtiRequest, is_null_request
from repro.net.addresses import MacAddress
from repro.net.packet import EtherType, EthernetFrame
from repro.sim.engine import Simulator
from repro.sim.units import s_to_ns


class MessageSink:
    def __init__(self):
        self.messages = []

    def receive_fapi(self, message, channel):
        self.messages.append(message)


def build_orion(sim):
    orion = PhySideOrion(
        sim, phy_id=0, mac=MacAddress(0x200),
        config=OrionConfig(service_base_ns=0, service_per_byte_ns=0.0),
    )
    sink = MessageSink()
    orion.shm_to_phy = ShmChannel(sim, sink, latency_ns=0)
    return orion, sink


def deliver(orion, message):
    orion.receive_frame(
        EthernetFrame(
            src=MacAddress(0x100), dst=orion.mac, ethertype=EtherType.IPV4,
            payload=OrionDatagram(message=message, phy_id=0, is_response=False),
            wire_bytes=100,
        ),
        ingress=None,
    )


class TestGapRepair:
    def test_contiguous_slots_need_no_repair(self):
        sim = Simulator()
        orion, sink = build_orion(sim)
        for slot in range(5):
            deliver(orion, UlTtiRequest(cell_id=0, slot=slot, pdus=[]))
        sim.run()
        assert orion.nulls_injected == 0
        assert [m.slot for m in sink.messages] == [0, 1, 2, 3, 4]

    def test_single_lost_slot_repaired_with_null(self):
        sim = Simulator()
        orion, sink = build_orion(sim)
        deliver(orion, UlTtiRequest(cell_id=0, slot=10, pdus=[]))
        deliver(orion, UlTtiRequest(cell_id=0, slot=12, pdus=[]))  # 11 lost.
        sim.run()
        assert orion.nulls_injected == 1
        slots = [m.slot for m in sink.messages]
        assert slots == [10, 11, 12]
        assert is_null_request(sink.messages[1])

    def test_burst_loss_repaired_in_order(self):
        sim = Simulator()
        orion, sink = build_orion(sim)
        deliver(orion, DlTtiRequest(cell_id=0, slot=0, pdus=[]))
        deliver(orion, DlTtiRequest(cell_id=0, slot=4, pdus=[]))
        sim.run()
        assert [m.slot for m in sink.messages] == [0, 1, 2, 3, 4]
        assert orion.nulls_injected == 3

    def test_ul_and_dl_sequences_tracked_separately(self):
        sim = Simulator()
        orion, sink = build_orion(sim)
        deliver(orion, UlTtiRequest(cell_id=0, slot=0, pdus=[]))
        deliver(orion, DlTtiRequest(cell_id=0, slot=0, pdus=[]))
        deliver(orion, UlTtiRequest(cell_id=0, slot=1, pdus=[]))
        deliver(orion, DlTtiRequest(cell_id=0, slot=1, pdus=[]))
        sim.run()
        assert orion.nulls_injected == 0

    def test_cells_tracked_separately(self):
        sim = Simulator()
        orion, sink = build_orion(sim)
        deliver(orion, UlTtiRequest(cell_id=0, slot=5, pdus=[]))
        deliver(orion, UlTtiRequest(cell_id=1, slot=9, pdus=[]))
        sim.run()
        assert orion.nulls_injected == 0  # First sighting per cell.

    def test_out_of_order_delivery_not_double_repaired(self):
        sim = Simulator()
        orion, sink = build_orion(sim)
        deliver(orion, UlTtiRequest(cell_id=0, slot=5, pdus=[]))
        deliver(orion, UlTtiRequest(cell_id=0, slot=4, pdus=[]))  # Late.
        deliver(orion, UlTtiRequest(cell_id=0, slot=6, pdus=[]))
        sim.run()
        assert orion.nulls_injected == 0

    def test_repair_burst_bounded(self):
        """A huge sequence jump (e.g. after a long pause) must not flood
        the PHY with thousands of nulls."""
        sim = Simulator()
        orion, sink = build_orion(sim)
        deliver(orion, UlTtiRequest(cell_id=0, slot=0, pdus=[]))
        deliver(orion, UlTtiRequest(cell_id=0, slot=10_000, pdus=[]))
        sim.run()
        assert orion.nulls_injected <= 8


class TestEndToEndLoss:
    def test_phy_survives_transport_loss(self):
        """Drop a burst of L2->PHY datagrams on the wire: the PHY must
        not crash (it would after 4 slots without TTI requests)."""
        cell = build_slingshot_cell(
            CellConfig(seed=77, ue_profiles=[UeProfile(1, "UE", 16.0)])
        )
        cell.run_for(s_to_ns(0.3))
        phy_orion = cell.phy_servers[0].orion
        original = phy_orion.receive_frame
        dropped = {"count": 0}

        def lossy(frame, ingress):
            payload = frame.payload
            # Drop the next ~2 slots' worth of requests.
            if dropped["count"] < 6 and isinstance(payload, OrionDatagram):
                if isinstance(payload.message, (UlTtiRequest, DlTtiRequest)):
                    dropped["count"] += 1
                    return
            original(frame, ingress)

        phy_orion.receive_frame = lossy
        cell.run_for(s_to_ns(0.3))
        assert dropped["count"] == 6
        assert cell.phy_servers[0].phy.alive
        assert phy_orion.nulls_injected >= 2
        assert cell.ue(1).stats.rlf_events == 0
