"""Telemetry subsystem tests.

Covers the three contract legs of :mod:`repro.telemetry`:

* **Zero cost when disabled** — components built outside ``enabled(...)``
  carry no registry handle at all.
* **Determinism** — snapshots are canonical (sorted keys), merges are a
  pure function of canonical shard order, and the report at ``--jobs 2``
  is byte-identical to ``--jobs 1``.
* **Digest neutrality** — instrumented runs reproduce the golden
  canonical-trace digests recorded with telemetry off.

Plus the timeline reconstructor (synthetic traces, round-trips, and the
paper's §5.2 detection-latency bound on a real crash failover).
"""

import json

import pytest

from repro.core.failure_detector import DetectorConfig, FailureDetector
from repro.sim.engine import Simulator
from repro.sim.trace import TraceEvent
from repro.sim.units import MS, US
from repro.telemetry import (
    EVENT_COUNTER_PREFIX,
    EventCountProbe,
    FailoverTimeline,
    MetricsRegistry,
    active,
    disable,
    enable,
    enabled,
    merge_snapshots,
)


class TestMetricsPrimitives:
    def test_counter_accumulates_and_is_shared_by_name(self):
        registry = MetricsRegistry()
        registry.counter("pkts").inc()
        registry.counter("pkts").inc(4)
        assert registry.counter("pkts").value == 5
        assert registry.counter("pkts") is registry.counter("pkts")

    def test_gauge_is_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3)
        registry.gauge("depth").set(1)
        assert registry.gauge("depth").value == 1

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (5, 1, 9):
            registry.histogram("lat").observe(value)
        assert registry.histogram("lat").summary() == {
            "count": 3,
            "min": 1,
            "max": 9,
            "sum": 15,
        }
        assert registry.histogram("empty").summary() == {"count": 0}

    def test_span_sorts_attrs_and_computes_duration(self):
        registry = MetricsRegistry()
        span = registry.span("recovery", 100, 350, seed=1, scenario="crash")
        assert span.duration_ns == 250
        assert span.attrs == (("scenario", "crash"), ("seed", 1))
        assert registry.spans == (span,)

    def test_snapshot_is_canonically_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        registry.histogram("m").observe(7)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["alpha", "zeta"]
        assert snapshot["histograms"]["m"]["observations"] == [7]
        # Canonical means JSON round-trip stable.
        assert json.loads(json.dumps(snapshot)) == snapshot


class TestActiveRegistry:
    def test_disabled_by_default(self):
        disable()
        assert active() is None

    def test_enabled_scope_installs_and_restores(self):
        disable()
        with enabled() as registry:
            assert active() is registry
            with enabled() as inner:
                assert active() is inner
            assert active() is registry
        assert active() is None

    def test_enable_returns_the_installed_registry(self):
        mine = MetricsRegistry()
        try:
            assert enable(mine) is mine
            assert active() is mine
        finally:
            disable()

    def test_component_built_while_disabled_carries_no_registry(self):
        disable()
        detector = FailureDetector()
        assert detector._metrics is None

    def test_component_built_while_enabled_captures_registry(self):
        with enabled() as registry:
            detector = FailureDetector()
        assert detector._metrics is registry

    def test_detector_counts_ticks_resets_and_saturation(self):
        config = DetectorConfig(timeout_ns=450 * US, ticks_per_timeout=50)
        with enabled() as registry:
            detector = FailureDetector(config)
        detector.set_monitor(0, True)
        detector.on_heartbeat(0, 1000)
        for tick in range(config.ticks_per_timeout):
            detector.on_timer_tick(1000 + (tick + 1) * config.tick_period_ns)
        counters = registry.snapshot()["counters"]
        assert counters["detector.heartbeat_resets"] == 1
        assert counters["detector.ticks"] == config.ticks_per_timeout
        assert counters["detector.saturations"] == 1
        histogram = registry.snapshot()["histograms"][
            "detector.detection_latency_ns"
        ]
        assert histogram["count"] == 1
        assert histogram["observations"][0] == config.timeout_ns


class TestMergeSnapshots:
    def _snapshot(self, **counters):
        registry = MetricsRegistry()
        for name, value in counters.items():
            registry.counter(name).inc(value)
        return registry.snapshot()

    def test_counters_add_and_resort(self):
        merged = merge_snapshots(
            [self._snapshot(b=2), self._snapshot(a=1, b=3)]
        )
        assert merged["counters"] == {"a": 1, "b": 5}
        assert list(merged["counters"]) == ["a", "b"]

    def test_histograms_concatenate_in_shard_order(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.histogram("lat").observe(10)
        second.histogram("lat").observe(3)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["histograms"]["lat"]["observations"] == [10, 3]
        assert merged["histograms"]["lat"]["count"] == 2
        assert merged["histograms"]["lat"]["min"] == 3

    def test_gauges_last_write_and_spans_concatenate(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.gauge("depth").set(9)
        first.span("s", 0, 10)
        second.gauge("depth").set(2)
        second.span("s", 10, 30)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["gauges"]["depth"] == 2
        assert [span["t_start_ns"] for span in merged["spans"]] == [0, 10]

    def test_merge_of_empty_is_empty(self):
        merged = merge_snapshots([])
        assert merged == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": [],
        }


class TestEventCountProbe:
    def _run_small_sim(self):
        sim = Simulator()
        fired = []
        for t in (10, 20, 30):
            sim.schedule(t, lambda: fired.append(sim.now))
        sim.run_until(100)
        return fired

    def test_counts_fired_events_and_restores_pop(self):
        original_pop = Simulator._pop
        with EventCountProbe() as probe:
            assert Simulator._pop is not original_pop
            self._run_small_sim()
        assert Simulator._pop is original_pop
        assert probe.total_events == 3

    def test_records_into_active_registry(self):
        with enabled() as registry:
            with EventCountProbe():
                self._run_small_sim()
        counters = registry.snapshot()["counters"]
        assert sum(
            value
            for name, value in counters.items()
            if name.startswith(EVENT_COUNTER_PREFIX)
        ) == 3

    def test_not_reentrant(self):
        with EventCountProbe() as probe:
            with pytest.raises(RuntimeError):
                probe.__enter__()

    def test_probe_without_registry_keeps_registry_empty(self):
        disable()
        with EventCountProbe() as probe:
            self._run_small_sim()
        assert probe.total_events == 3


class TestFailoverTimeline:
    def _failover_events(self):
        return [
            TraceEvent(400 * MS, "chaos.rx"),
            TraceEvent(500 * MS, "phy.crash", {"phy_id": 0}),
            TraceEvent(500 * MS + 450 * US, "mbox.failure_detected"),
            TraceEvent(500 * MS + 500 * US, "orion.failure_notified"),
            TraceEvent(500 * MS + 600 * US, "orion.migration_started"),
            TraceEvent(500 * MS + 1 * MS, "mbox.migration_committed"),
            TraceEvent(510 * MS, "chaos.rx"),
            TraceEvent(512 * MS, "chaos.rx"),
        ]

    def test_anchors_and_decomposition(self):
        timeline = FailoverTimeline.from_events(
            self._failover_events(),
            window_start_ns=350 * MS,
            window_end_ns=1000 * MS,
        )
        assert timeline.fault_ns == 500 * MS
        assert timeline.detected_ns == 500 * MS + 450 * US
        assert timeline.notified_ns == 500 * MS + 500 * US
        assert timeline.committed_ns == 500 * MS + 1 * MS
        assert timeline.first_good_ns == 510 * MS
        assert timeline.detect_latency_ns == 450 * US
        assert timeline.notify_latency_ns == 50 * US
        assert timeline.commit_latency_ns == 500 * US
        assert timeline.resume_latency_ns == 9 * MS
        assert timeline.fault_to_first_good_ns == 10 * MS

    def test_downtime_is_the_invariant_probe_gap(self):
        """downtime_ns is RecoveryInvariants.max_probe_gap_ns, verbatim."""
        from repro.faults.invariants import RecoveryInvariants

        events = self._failover_events()
        timeline = FailoverTimeline.from_events(
            events, window_start_ns=350 * MS, window_end_ns=1000 * MS
        )
        gap = RecoveryInvariants(
            events,
            window_start_ns=350 * MS,
            window_end_ns=1000 * MS,
            downtime_budget_ns=None,
            expected_migrations=0,
        ).max_probe_gap_ns()
        assert timeline.downtime_ns == gap

    def test_link_noise_run_has_none_phases(self):
        events = [
            TraceEvent(400 * MS, "chaos.rx"),
            TraceEvent(420 * MS, "chaos.rx"),
        ]
        timeline = FailoverTimeline.from_events(
            events, window_start_ns=350 * MS, window_end_ns=1000 * MS
        )
        assert timeline.fault_ns is None
        assert timeline.detected_ns is None
        assert timeline.committed_ns is None
        assert timeline.first_good_ns is None
        assert timeline.detect_latency_ns is None

    def test_dict_round_trip(self):
        timeline = FailoverTimeline.from_events(
            self._failover_events(),
            window_start_ns=350 * MS,
            window_end_ns=1000 * MS,
        )
        data = json.loads(json.dumps(timeline.as_dict()))
        assert FailoverTimeline.from_dict(data) == timeline
        assert data["detect_latency_ns"] == timeline.detect_latency_ns


# ----------------------------------------------------------------------
# Full-cell runs: digest neutrality and the §5.2 latency bound (slow)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestDigestNeutrality:
    def test_instrumented_chaos_run_reproduces_golden_digest(self):
        """Telemetry ON reproduces the digest recorded with telemetry OFF."""
        from repro.telemetry.runner import run_instrumented_scenario
        from tests.test_perf_digests import GOLDEN_DIGESTS

        run = run_instrumented_scenario("cmd_drop", 1)
        assert run["digest"] == GOLDEN_DIGESTS["chaos_cmd_drop"]
        assert run["invariants_passed"] is True
        # The run was actually instrumented, not silently disabled.
        counters = run["metrics"]["counters"]
        assert counters["detector.ticks"] > 0
        assert any(
            name.startswith(EVENT_COUNTER_PREFIX) for name in counters
        )

    def test_instrumented_perf_scenario_reproduces_golden_digest(self):
        from repro.perf.scenarios import scenario_digest
        from tests.test_perf_digests import GOLDEN_DIGESTS

        with enabled(), EventCountProbe():
            digest = scenario_digest("fig10_smoke")
        assert digest == GOLDEN_DIGESTS["fig10_smoke"]


@pytest.mark.slow
class TestInstrumentedFailover:
    @pytest.fixture(scope="class")
    def crash_run(self):
        from repro.telemetry.runner import run_instrumented_scenario

        return run_instrumented_scenario("crash", 1)

    def test_detection_latency_within_one_tick_of_timeout(self, crash_run):
        """§5.2: detection fires one timeout after the last heartbeat,
        quantized by the 9 µs tick — every observed latency sits within
        one tick of T = 450 µs."""
        config = DetectorConfig()
        histogram = crash_run["metrics"]["histograms"][
            "detector.detection_latency_ns"
        ]
        assert histogram["count"] >= 1
        for observed in histogram["observations"]:
            assert (
                abs(observed - config.timeout_ns) <= config.tick_period_ns
            ), f"detection latency {observed} ns vs T={config.timeout_ns} ns"

    def test_timeline_within_scenario_downtime_budget(self, crash_run):
        from repro.faults.scenarios import scenario_by_name

        budget = scenario_by_name()["crash"].downtime_budget_ns
        timeline = crash_run["timeline"]
        assert timeline["downtime_ns"] is not None
        assert timeline["downtime_ns"] <= budget
        # The decomposition is causally ordered.
        assert (
            timeline["fault_ns"]
            < timeline["detected_ns"]
            <= timeline["notified_ns"]
            <= timeline["committed_ns"]
            <= timeline["first_good_ns"]
        )

    def test_recovery_span_emitted(self, crash_run):
        spans = [
            span
            for span in crash_run["metrics"]["spans"]
            if span["name"] == "chaos.recovery"
        ]
        assert len(spans) == 1
        assert spans[0]["attrs"]["scenario"] == "crash"
        assert spans[0]["attrs"]["seed"] == 1


@pytest.mark.slow
class TestParallelNeutrality:
    def test_report_identical_at_jobs_1_and_2(self):
        from repro.telemetry.runner import run_telemetry

        serial = run_telemetry(["cmd_drop", "crash"], [1], jobs=1)
        parallel = run_telemetry(["cmd_drop", "crash"], [1], jobs=2)
        serial.pop("execution")
        parallel.pop("execution")
        assert serial == parallel


@pytest.mark.slow
class TestTelemetryCli:
    def test_list_exits_zero(self, capsys):
        from repro.telemetry.runner import main

        assert main(["--list"]) == 0
        assert "cmd_drop" in capsys.readouterr().out

    def test_check_quick_gate_passes(self, capsys):
        """The tier-1 gate: quick matrix vs the recorded baseline."""
        from repro.telemetry.runner import main

        assert main(["--check", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "telemetry check passed" in out
        assert "0 digest-neutrality failures" in out

    def test_unknown_scenario_is_usage_error(self, capsys):
        from repro.telemetry.runner import main

        assert main(["--scenario", "nonsense"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
