"""Tests for standing up new secondaries after failovers (§6.3).

Orion stores each cell's initialization messages precisely so that new
hot standbys can be spawned on spare servers after the original primary
dies; with three PHY servers the cell survives two successive failures.
"""

import pytest

from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.sim.units import US, s_to_ns


def three_server_config(seed=70):
    return CellConfig(
        seed=seed,
        num_phy_servers=3,
        ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=16.0)],
    )


class TestSecondaryReplacement:
    def test_spare_server_becomes_standby_after_failover(self):
        cell = build_slingshot_cell(three_server_config())
        cell.run_for(s_to_ns(0.5))
        cell.kill_phy_at(0, cell.sim.now + 100 * US)
        cell.run_for(s_to_ns(0.3))
        assignment = cell.l2_orion.cells[0]
        assert assignment.primary_phy == 1
        assert assignment.secondary_phy is None
        new_secondary = cell.controller.replace_failed_secondary(0)
        assert new_secondary == 2
        cell.run_for(s_to_ns(0.3))
        # The spare now runs the cell on null FAPI (hot standby).
        spare = cell.phy_servers[2].phy
        assert spare.cpu.null_slots > 0
        assert 0 in spare.cells and spare.cells[0].started

    def test_cell_survives_two_successive_failures(self):
        cell = build_slingshot_cell(three_server_config(seed=71))
        cell.run_for(s_to_ns(0.5))
        # First failure: 0 -> 1.
        cell.kill_phy_at(0, cell.sim.now + 100 * US)
        cell.run_for(s_to_ns(0.3))
        cell.controller.replace_failed_secondary(0)
        cell.run_for(s_to_ns(0.3))
        # Second failure: 1 -> 2.
        cell.kill_phy_at(1, cell.sim.now + 100 * US)
        cell.run_for(s_to_ns(0.4))
        assignment = cell.l2_orion.cells[0]
        assert assignment.primary_phy == 2
        assert cell.middlebox.stats.migrations_executed == 2
        ue = cell.ue(1)
        assert ue.stats.rlf_events == 0
        assert ue.attached
        # Uplink still flows on the third server.
        crc_before = cell.l2.stats.ul_crc_ok
        cell.run_for(s_to_ns(0.3))
        assert cell.l2.stats.ul_crc_ok > crc_before

    def test_just_failed_server_never_chosen(self):
        """With two servers, the only spare after a failover is the
        server that just crashed — the policy refuses it even when
        restarts are allowed (the fault may recur)."""
        cell = build_slingshot_cell(
            CellConfig(
                seed=72, num_phy_servers=2,
                ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=16.0)],
            )
        )
        cell.run_for(s_to_ns(0.5))
        cell.kill_phy_at(0, cell.sim.now)
        cell.run_for(s_to_ns(0.3))
        assert cell.controller.replace_failed_secondary(0) is None
        assert cell.controller.replace_failed_secondary(0, allow_restart=True) is None

    def test_replacement_restarts_repaired_spare_when_allowed(self):
        """A server that crashed for unrelated reasons can be revived as
        the new standby, but only with the operator's allow_restart."""
        cell = build_slingshot_cell(three_server_config(seed=73))
        cell.run_for(s_to_ns(0.5))
        cell.phy_servers[2].phy.crash(reason="earlier fault")
        cell.kill_phy_at(0, cell.sim.now + 100 * US)
        cell.run_for(s_to_ns(0.3))
        # Automatically: no live, non-suspect spare exists.
        assert cell.controller.replace_failed_secondary(0) is None
        # Operator offers the repaired server 2 (server 0 stays excluded).
        new_secondary = cell.controller.replace_failed_secondary(
            0, allow_restart=True
        )
        assert new_secondary == 2
        assert cell.phy_servers[2].phy.alive
