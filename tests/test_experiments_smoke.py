"""Smoke tests for every experiment harness (scaled-down parameters).

Full-length runs live in benchmarks/; these verify each harness produces
a structurally sound result and preserves the paper's qualitative shape.
"""

import pytest

from repro.experiments import (
    ablations,
    fig3_vm_migration,
    fig8_video,
    fig11_upgrade,
    fig12_orion_latency,
    sec52_detector,
    sec82_dropped_ttis,
    sec85_overhead,
    sec86_switch,
    table2_stress,
)


class TestFig3:
    def test_shape(self):
        result = fig3_vm_migration.run(runs_per_transport=20)
        assert 150.0 < result.median_pause_ms() < 400.0
        assert result.crash_fraction() == 1.0
        cdf = result.cdf(fig3_vm_migration.TransportKind.TCP)
        assert len(cdf) == 20
        assert fig3_vm_migration.summarize(result)


class TestFig12:
    def test_latency_rises_with_load_but_stays_bounded(self):
        result = fig12_orion_latency.run(duration_s=0.3)
        medians = [p.median_us for p in result.points]
        assert medians == sorted(medians)
        assert result.max_added_latency_us() < 400.0  # TTI budget margin.
        assert result.points[0].median_us < 10.0  # Idle is microseconds.
        assert fig12_orion_latency.summarize(result)


class TestSec86:
    def test_resources_and_gap(self):
        result = sec86_switch.run(gap_duration_s=1.0)
        assert result.resource_percent["sram_bits"] == pytest.approx(5.3, abs=0.5)
        assert result.max_gap_us < 450.0  # Never above the timeout.
        assert result.max_gap_us > 200.0  # But a real fraction of it.
        assert result.sram_scaling[1024] > result.sram_scaling[64]
        assert sec86_switch.summarize(result)


class TestSec52:
    def test_detection_latency_within_budget(self):
        result = sec52_detector.run(trials=3, healthy_seconds=1.0)
        assert len(result.detection_latencies_us) == 3
        assert result.max_us() < 1100.0  # ~2 TTIs upper bound.
        assert result.false_positives == 0
        assert sec52_detector.summarize(result)


class TestSec82:
    def test_dropped_tti_comparison(self):
        result = sec82_dropped_ttis.run(trials=2)
        assert result.max_failover_dropped() <= 4
        assert result.planned_dropped == 0
        assert result.vm_migration_dropped > 100
        assert sec82_dropped_ttis.summarize(result)


class TestSec85:
    def test_secondary_overhead_negligible(self):
        result = sec85_overhead.run(duration_s=1.0)
        assert result.secondary_cpu_fraction < 0.05
        assert result.secondary_fec_decodes == 0
        assert result.null_fapi_bytes_per_s < 1_000_000  # < 1 MB/s.
        assert sec85_overhead.summarize(result)


class TestFig8:
    def test_slingshot_vs_baseline_outage(self):
        result = fig8_video.run(duration_s=4.0, failure_at_s=1.5)
        assert result.failure_with_slingshot.outage_seconds == 0.0
        assert result.failure_without_slingshot.outage_seconds > 1.5
        assert result.failure_with_slingshot.rlf_events == 0
        assert result.failure_without_slingshot.rlf_events == 1
        assert fig8_video.summarize(result)


class TestFig11:
    def test_upgrade_improves_phones(self):
        result = fig11_upgrade.run(duration_s=4.0, upgrade_at_s=2.0)
        for phone in ("OnePlus N10", "Samsung A52s"):
            before, after = result.mean_before_after(phone)
            assert after > before * 1.3
        fairness_before, fairness_after = result.fairness_before_after()
        assert fairness_after >= fairness_before
        assert result.control_gaps_during_upgrade == 0
        assert fig11_upgrade.summarize(result)


class TestTable2:
    def test_low_rate_stress_row(self):
        result = table2_stress.run(rates_per_s=[5.0], duration_s=3.0)
        row = result.rows[0]
        assert row.migrations_executed >= 10
        assert row.blackout_bins_10ms <= 2
        assert row.max_tput_mbps_per_10ms > row.min_tput_mbps_per_10ms
        assert table2_stress.summarize(result)


class TestAblations:
    def test_tti_alignment_prevents_mixed_slots(self):
        result = ablations.tti_alignment(trials=1)
        assert result.aligned_conflicting_slots == 0
        assert result.unaligned_conflicting_slots >= 1

    def test_software_vs_switch(self):
        comparison = ablations.software_vs_switch_middlebox()
        assert comparison.software_radius_reduction > 0.05
        assert comparison.switch_added_latency_us < 1.0
        assert comparison.software_nic_multiplier == 2.0

    def test_null_vs_duplicate_fapi(self):
        result = ablations.null_vs_duplicate_fapi(duration_s=1.0)
        assert result.null_secondary_fraction < 0.05
        assert result.duplicate_secondary_fraction > 0.5

    def test_detector_timeout_sweep_tradeoff(self):
        points = ablations.detector_timeout_sweep(timeouts_us=[250.0, 450.0, 1800.0])
        by_timeout = {p.timeout_us: p for p in points}
        # Too-low timeout false-positives on healthy gaps (~390 us).
        assert by_timeout[250.0].false_positives > 0
        assert by_timeout[450.0].false_positives == 0
        # Larger timeouts detect more slowly.
        assert (
            by_timeout[1800.0].detection_latency_us
            > by_timeout[450.0].detection_latency_us
        )
