"""Tests for the baselines: pre-copy VM migration and the software
fronthaul middlebox model."""

import numpy as np
import pytest

from repro.baselines.software_mbox import SoftwareMboxConfig, SoftwareMiddleboxModel
from repro.baselines.vm_migration import (
    PrecopyMigrationModel,
    TransportKind,
    VmMigrationConfig,
)
from repro.sim.units import MS, US


class TestPrecopyModel:
    @pytest.fixture(scope="class")
    def campaigns(self):
        model = PrecopyMigrationModel(rng=np.random.default_rng(0))
        return (
            model.run_campaign(TransportKind.TCP, 40),
            model.run_campaign(TransportKind.RDMA, 40),
        )

    def test_pause_is_hundreds_of_ms(self, campaigns):
        tcp, rdma = campaigns
        overall = [r.pause_time_ms for r in tcp + rdma]
        median = float(np.median(overall))
        assert 150.0 < median < 400.0  # Paper: 244 ms.

    def test_rdma_faster_than_tcp(self, campaigns):
        tcp, rdma = campaigns
        assert np.median([r.pause_time_ms for r in rdma]) < np.median(
            [r.pause_time_ms for r in tcp]
        )

    def test_flexran_crashes_in_every_run(self, campaigns):
        tcp, rdma = campaigns
        assert all(r.phy_crashed for r in tcp + rdma)

    def test_pause_exceeds_jitter_budget_by_orders_of_magnitude(self, campaigns):
        tcp, _ = campaigns
        budget = VmMigrationConfig().phy_jitter_tolerance_ns
        assert min(r.pause_time_ns for r in tcp) > 1000 * budget

    def test_precopy_converges_before_round_cap(self):
        model = PrecopyMigrationModel(rng=np.random.default_rng(1))
        run = model.migrate_once(TransportKind.RDMA)
        assert run.rounds < VmMigrationConfig().max_rounds

    def test_total_includes_pause(self):
        model = PrecopyMigrationModel(rng=np.random.default_rng(2))
        run = model.migrate_once(TransportKind.TCP)
        assert run.total_time_ns > run.pause_time_ns

    def test_cdf_shape(self):
        model = PrecopyMigrationModel(rng=np.random.default_rng(3))
        runs = model.run_campaign(TransportKind.TCP, 20)
        cdf = PrecopyMigrationModel.pause_cdf(runs)
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)
        pauses = [p for p, _ in cdf]
        assert pauses == sorted(pauses)

    def test_higher_bandwidth_lowers_pause(self):
        fast = VmMigrationConfig(rdma_bandwidth_bytes_per_s=20e9)
        slow = VmMigrationConfig(rdma_bandwidth_bytes_per_s=5e9)
        fast_runs = PrecopyMigrationModel(fast, np.random.default_rng(4)).run_campaign(
            TransportKind.RDMA, 15
        )
        slow_runs = PrecopyMigrationModel(slow, np.random.default_rng(4)).run_campaign(
            TransportKind.RDMA, 15
        )
        assert np.median([r.pause_time_ms for r in fast_runs]) < np.median(
            [r.pause_time_ms for r in slow_runs]
        )


class TestSoftwareMbox:
    @pytest.fixture(scope="class")
    def model(self):
        return SoftwareMiddleboxModel(rng=np.random.default_rng(0))

    def test_p99999_latency_near_10us(self, model):
        added = model.added_latency_percentile_ns(99.999)
        assert 6_000 < added < 16_000  # Paper: ~10 us.

    def test_median_latency_much_lower(self, model):
        assert model.added_latency_percentile_ns(50) < 6_000

    def test_radius_reduction_near_10_percent(self, model):
        reduction = model.radius_reduction_fraction()
        assert 0.06 < reduction < 0.16  # Paper: ~10 %.

    def test_baseline_radius_is_20km(self, model):
        assert model.radius_km(0.0) == pytest.approx(20.0)

    def test_cpu_overhead_near_10_percent(self, model):
        assert model.cpu_overhead_fraction() == pytest.approx(0.10, abs=0.03)

    def test_nic_bandwidth_doubles(self, model):
        assert model.nic_bandwidth_multiplier() == 2.0
