"""Unit tests for the PHY process (FlexRAN stand-in) in isolation."""

import numpy as np
import pytest

from repro.fapi.channels import ShmChannel
from repro.fapi.messages import (
    ConfigRequest,
    CrcIndication,
    DlTtiRequest,
    PuschPdu,
    RxDataIndication,
    SlotIndication,
    StartRequest,
    TxDataRequest,
    UciIndication,
    UlTtiRequest,
    null_dl_tti,
    null_ul_tti,
)
from repro.fronthaul.oran import CplaneMessage, UplaneDownlink, UplaneUplink
from repro.net.addresses import MacAddress
from repro.net.link import Link
from repro.phy.channel import ChannelRealization
from repro.phy.modulation import Modulation
from repro.phy.numerology import Numerology, SlotClock, TddPattern
from repro.phy.process import PhyConfig, PhyProcess
from repro.phy.transport import LinkDirection, TransportBlock
from repro.sim.engine import Simulator
from repro.sim.units import MS, US


class FrameSink:
    def __init__(self, sim):
        self.sim = sim
        self.frames = []

    def receive_frame(self, frame, ingress):
        self.frames.append((self.sim.now, frame))

    def payloads(self, cls):
        return [f.payload for _, f in self.frames if isinstance(f.payload, cls)]


class FapiSink:
    def __init__(self):
        self.messages = []

    def receive_fapi(self, message, channel):
        self.messages.append(message)

    def of_type(self, cls):
        return [m for m in self.messages if isinstance(m, cls)]


def build_phy(sim, **config_kwargs):
    sink = FrameSink(sim)
    uplink = Link(sim, sink, bandwidth_bps=0, latency_ns=0)
    phy = PhyProcess(
        sim=sim,
        phy_id=0,
        mac=MacAddress(0x20),
        slot_clock=SlotClock(Numerology()),
        tdd=TddPattern(),
        rng=np.random.default_rng(0),
        config=PhyConfig(**config_kwargs),
        uplink=uplink,
    )
    fapi_sink = FapiSink()
    phy.fapi_tx = ShmChannel(sim, fapi_sink, latency_ns=0)
    return phy, sink, fapi_sink


def start_cell(phy, cell_id=0, ru_id=0):
    phy.receive_fapi(ConfigRequest(cell_id=cell_id, ru_id=ru_id), channel=None)
    phy.receive_fapi(StartRequest(cell_id=cell_id), channel=None)


def feed_nulls(phy, sim, first_slot, count):
    for slot in range(first_slot, first_slot + count):
        phy.receive_fapi(null_ul_tti(0, slot), channel=None)
        phy.receive_fapi(null_dl_tti(0, slot), channel=None)


class TestHeartbeatEmission:
    def test_cplane_every_slot_even_with_null_work(self):
        sim = Simulator()
        phy, sink, _ = build_phy(sim)
        start_cell(phy)
        feed_nulls(phy, sim, 1, 20)
        sim.run_until(10 * MS)
        cplanes = sink.payloads(CplaneMessage)
        slots = {p.abs_slot for p in cplanes}
        # Every started slot produced at least one heartbeat.
        assert set(range(2, 18)).issubset(slots)

    def test_no_emission_before_start(self):
        sim = Simulator()
        phy, sink, _ = build_phy(sim)
        phy.receive_fapi(ConfigRequest(cell_id=0, ru_id=0), channel=None)
        sim.run_until(5 * MS)
        assert sink.frames == []

    def test_no_emission_after_crash(self):
        sim = Simulator()
        phy, sink, _ = build_phy(sim)
        start_cell(phy)
        feed_nulls(phy, sim, 1, 40)
        sim.run_until(5 * MS)
        phy.crash()
        count = len(sink.frames)
        sim.run_until(10 * MS)
        assert len(sink.frames) == count

    def test_heartbeat_gaps_stay_below_detector_timeout(self):
        """The PHY's transmit jitter must keep every inter-packet gap
        under the 450 us detector budget (§8.6's calibration)."""
        sim = Simulator()
        phy, sink, _ = build_phy(sim)
        start_cell(phy)
        feed_nulls(phy, sim, 1, 400)
        sim.run_until(200 * MS)
        times = sorted(t for t, _ in sink.frames)
        gaps = np.diff(times)
        assert gaps.max() < 450 * US


class TestFapiContract:
    def test_crash_after_consecutive_missing_tti(self):
        sim = Simulator()
        phy, sink, _ = build_phy(sim, max_missing_tti_slots=4)
        start_cell(phy)
        feed_nulls(phy, sim, 1, 6)  # Slots 1-6 covered, then nothing.
        sim.run_until(8 * MS)
        assert not phy.alive

    def test_survives_with_continuous_nulls(self):
        sim = Simulator()
        phy, sink, _ = build_phy(sim)
        start_cell(phy)
        feed_nulls(phy, sim, 1, 100)
        sim.run_until(40 * MS)
        assert phy.alive
        assert phy.cpu.null_slots > 70

    def test_null_slots_cost_next_to_nothing(self):
        sim = Simulator()
        phy, sink, _ = build_phy(sim)
        start_cell(phy)
        feed_nulls(phy, sim, 1, 100)
        sim.run_until(40 * MS)
        assert phy.cpu.busy_core_us < 200  # ~1 us per null slot.

    def test_restart_requires_reconfiguration(self):
        sim = Simulator()
        phy, sink, _ = build_phy(sim)
        start_cell(phy)
        feed_nulls(phy, sim, 1, 10)
        sim.run_until(3 * MS)
        phy.crash()
        phy.restart(decoder_iterations=12)
        assert phy.alive
        assert phy.cells == {}  # All cell state gone.
        assert phy.config.decoder_iterations == 12


class TestUplinkPipeline:
    def _granted_pdu(self, slot, tb_id=900):
        return PuschPdu(
            ue_id=1, harq_process=0, modulation=Modulation.QAM16,
            prbs=50, new_data=True, tb_id=tb_id, tb_bytes=500,
        )

    def test_capture_decoded_and_indicated_after_pipeline(self):
        sim = Simulator()
        phy, sink, fapi = build_phy(sim)
        start_cell(phy)
        clock = SlotClock(Numerology())
        ul_slot = 9  # A U slot (9 % 5 == 4).
        for slot in range(1, 16):
            request = UlTtiRequest(cell_id=0, slot=slot, pdus=[])
            if slot == ul_slot:
                request.pdus = [self._granted_pdu(slot)]
            phy.receive_fapi(request, channel=None)
            phy.receive_fapi(null_dl_tti(0, slot), channel=None)
        block = TransportBlock(
            ue_id=1, direction=LinkDirection.UPLINK, harq_process=0,
            modulation=Modulation.QAM16, prbs=50, data=["sdu"],
            size_bytes=500, tb_id=900, slot=ul_slot,
        )
        capture = UplaneUplink(
            ru_id=0, address=clock.address_of(ul_slot), abs_slot=ul_slot,
            block=block, realization=ChannelRealization(16.0),
        )
        # Arrives just after the slot ends, as the RU would send it.
        sim.at(clock.slot_start(ul_slot + 1) + 50 * US,
               phy.receive_frame,
               type("F", (), {"payload": capture})(), None)
        sim.run_until(clock.slot_start(ul_slot + 4))
        crcs = fapi.of_type(CrcIndication)
        assert len(crcs) == 1
        assert crcs[0].results[0].crc_ok
        rx = fapi.of_type(RxDataIndication)
        assert rx[0].payloads[0][3] == ["sdu"]
        # Indication timing: after the 2-slot pipeline, within slot+3.
        assert crcs[0].slot == ul_slot

    def test_missing_capture_decodes_garbage(self):
        sim = Simulator()
        phy, sink, fapi = build_phy(sim)
        start_cell(phy)
        ul_slot = 9
        for slot in range(1, 16):
            request = UlTtiRequest(cell_id=0, slot=slot, pdus=[])
            if slot == ul_slot:
                request.pdus = [self._granted_pdu(slot)]
            phy.receive_fapi(request, channel=None)
            phy.receive_fapi(null_dl_tti(0, slot), channel=None)
        sim.run_until(8 * MS)
        crcs = fapi.of_type(CrcIndication)
        assert len(crcs) == 1
        assert not crcs[0].results[0].crc_ok
        assert phy.codec.stats.garbage_decodes == 1


class TestDownlinkEmission:
    def test_dl_data_emitted_with_payload(self):
        sim = Simulator()
        phy, sink, fapi = build_phy(sim)
        start_cell(phy)
        dl_slot = 6  # A D slot.
        for slot in range(1, 10):
            phy.receive_fapi(null_ul_tti(0, slot), channel=None)
            request = DlTtiRequest(cell_id=0, slot=slot, pdus=[])
            if slot == dl_slot:
                from repro.fapi.messages import PdschPdu

                request.pdus = [
                    PdschPdu(
                        ue_id=1, harq_process=0, modulation=Modulation.QAM64,
                        prbs=100, new_data=True, tb_id=777, tb_bytes=4000,
                    )
                ]
                phy.receive_fapi(
                    TxDataRequest(cell_id=0, slot=slot, payloads=[(777, ["data"])]),
                    channel=None,
                )
            phy.receive_fapi(request, channel=None)
        sim.run_until(5 * MS)
        dl_packets = sink.payloads(UplaneDownlink)
        assert len(dl_packets) == 1
        assert dl_packets[0].block.tb_id == 777
        assert dl_packets[0].block.data == ["data"]
        assert dl_packets[0].block.size_bytes == 4000
        # Grant info went out in the slot's C-plane.
        cplane = [p for p in sink.payloads(CplaneMessage) if p.abs_slot == dl_slot]
        assert any(p.dl_allocations for p in cplane)
