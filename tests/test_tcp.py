"""Tests for the simplified TCP implementation."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.transport.packet import FlowDirection, Packet
from repro.transport.tcp import TcpConfig, TcpReceiver, TcpSegment, TcpSender


class PipePair:
    """Wires a sender and receiver through a lossy, delayed pipe."""

    def __init__(self, sim, one_way_ns=5 * MS, config=None):
        self.sim = sim
        self.one_way_ns = one_way_ns
        self.drop_data = set()  # segment seq values to drop once
        self.sender = TcpSender(
            sim, "flow", 1, 1, FlowDirection.UPLINK,
            transmit=self._to_receiver, config=config,
        )
        self.receiver = TcpReceiver(
            sim, "flow", 1, 1, FlowDirection.DOWNLINK,
            transmit_ack=self._to_sender,
        )

    def _to_receiver(self, packet):
        segment = packet.payload
        if segment.seq in self.drop_data:
            self.drop_data.discard(segment.seq)
            return
        self.sim.schedule(self.one_way_ns, self.receiver.on_segment, segment)

    def _to_sender(self, packet):
        self.sim.schedule(self.one_way_ns, self.sender.on_ack, packet.payload)


class TestBulkTransfer:
    def test_lossless_delivery_in_order(self):
        sim = Simulator()
        pipe = PipePair(sim)
        pipe.sender.start()
        sim.run_until(200 * MS)
        pipe.sender.stop()
        assert pipe.receiver.bytes_delivered > 0
        assert pipe.receiver.rcv_nxt == pipe.receiver.bytes_delivered

    def test_slow_start_doubles_window(self):
        sim = Simulator()
        config = TcpConfig(initial_cwnd_segments=2)
        pipe = PipePair(sim, config=config)
        pipe.sender.start()
        initial = pipe.sender.cwnd
        sim.run_until(60 * MS)  # Several RTTs.
        assert pipe.sender.cwnd > 4 * initial

    def test_rtt_estimation(self):
        sim = Simulator()
        pipe = PipePair(sim, one_way_ns=7 * MS)
        pipe.sender.start()
        sim.run_until(100 * MS)
        assert pipe.sender.srtt_ns == pytest.approx(14 * MS, rel=0.2)


class TestLossRecovery:
    def test_single_loss_recovers_by_fast_retransmit(self):
        sim = Simulator()
        pipe = PipePair(sim)
        pipe.sender.start()
        sim.run_until(50 * MS)
        victim = pipe.sender.snd_nxt  # Next segment will be dropped.
        pipe.drop_data.add(victim)
        sim.run_until(300 * MS)
        assert pipe.sender.stats.fast_retransmits >= 1
        assert pipe.sender.stats.rto_events == 0
        assert pipe.receiver.rcv_nxt >= victim + 1200

    def test_burst_loss_recovers_without_stall(self):
        """A contiguous burst (what a PHY failover drops) recovers via
        SACK-paced retransmission within a few RTTs."""
        sim = Simulator()
        pipe = PipePair(sim)
        pipe.sender.start()
        sim.run_until(50 * MS)
        start = pipe.sender.snd_nxt
        for i in range(12):
            pipe.drop_data.add(start + i * 1200)
        before = pipe.receiver.bytes_delivered
        sim.run_until(250 * MS)
        assert pipe.receiver.bytes_delivered > before + 12 * 1200
        assert pipe.receiver.rcv_nxt > start + 12 * 1200

    def test_window_reduced_on_fast_retransmit(self):
        sim = Simulator()
        pipe = PipePair(sim)
        pipe.sender.start()
        sim.run_until(50 * MS)
        cwnd_before = pipe.sender.cwnd
        pipe.drop_data.add(pipe.sender.snd_nxt)
        sim.run_until(120 * MS)
        # The recovery episode set ssthresh to half the loss-time pipe;
        # cwnd may have resumed growing since, but from that halved base.
        assert pipe.sender.stats.fast_retransmits >= 1
        assert pipe.sender.ssthresh < cwnd_before

    def test_total_blackout_recovers_via_rto(self):
        sim = Simulator()
        pipe = PipePair(sim)
        pipe.sender.start()
        sim.run_until(40 * MS)
        # Total blackout: both directions dead for 300 ms — nothing can
        # generate dupacks, so only the RTO can recover.
        original_to_receiver = pipe._to_receiver
        original_to_sender = pipe._to_sender
        blackout_until = sim.now + 300 * MS

        def gated_data(packet):
            if sim.now >= blackout_until:
                original_to_receiver(packet)

        def gated_ack(packet):
            if sim.now >= blackout_until:
                original_to_sender(packet)

        pipe.sender.transmit = gated_data
        pipe.receiver.transmit_ack = gated_ack
        progress_before = pipe.receiver.rcv_nxt
        sim.run_until(1500 * MS)
        assert pipe.sender.stats.rto_events >= 1
        assert pipe.receiver.rcv_nxt > progress_before  # Recovered.

    def test_rto_backoff_doubles(self):
        sim = Simulator()
        sender = TcpSender(
            sim, "f", 1, 1, FlowDirection.UPLINK, transmit=lambda p: None
        )
        sender.start()  # Transmits into the void: nothing ever acked.
        sim.run_until(2_000 * MS)
        assert sender.stats.rto_events >= 3
        assert sender.rto_ns > sender.config.min_rto_ns


class TestReceiver:
    def _segment(self, seq, length=1200):
        return TcpSegment(flow_id="f", seq=seq, length=length, ack=0)

    def test_in_order_acks_cumulative(self):
        sim = Simulator()
        acks = []
        receiver = TcpReceiver(
            sim, "f", 1, 1, FlowDirection.DOWNLINK,
            transmit_ack=lambda p: acks.append(p.payload.ack),
        )
        receiver.on_segment(self._segment(0))
        receiver.on_segment(self._segment(1200))
        assert acks == [1200, 2400]

    def test_gap_produces_duplicate_acks_with_sack(self):
        sim = Simulator()
        acks = []
        receiver = TcpReceiver(
            sim, "f", 1, 1, FlowDirection.DOWNLINK,
            transmit_ack=lambda p: acks.append(p.payload),
        )
        receiver.on_segment(self._segment(0))
        receiver.on_segment(self._segment(2400))  # 1200 missing.
        receiver.on_segment(self._segment(3600))
        assert [a.ack for a in acks] == [1200, 1200, 1200]
        assert acks[-1].sack_blocks == ((2400, 4800),)

    def test_gap_fill_releases_buffered_data(self):
        sim = Simulator()
        acks = []
        receiver = TcpReceiver(
            sim, "f", 1, 1, FlowDirection.DOWNLINK,
            transmit_ack=lambda p: acks.append(p.payload.ack),
        )
        receiver.on_segment(self._segment(0))
        receiver.on_segment(self._segment(2400))
        receiver.on_segment(self._segment(1200))
        assert acks[-1] == 3600
        assert receiver.bytes_delivered == 3600

    def test_duplicate_segment_ignored_for_goodput(self):
        sim = Simulator()
        receiver = TcpReceiver(
            sim, "f", 1, 1, FlowDirection.DOWNLINK, transmit_ack=lambda p: None
        )
        receiver.on_segment(self._segment(0))
        receiver.on_segment(self._segment(0))
        assert receiver.bytes_delivered == 1200

    def test_sack_blocks_merge_contiguous_ranges(self):
        sim = Simulator()
        receiver = TcpReceiver(
            sim, "f", 1, 1, FlowDirection.DOWNLINK, transmit_ack=lambda p: None
        )
        receiver.on_segment(self._segment(2400))
        receiver.on_segment(self._segment(3600))
        receiver.on_segment(self._segment(6000))
        assert receiver._sack_blocks() == ((2400, 4800), (6000, 7200))
