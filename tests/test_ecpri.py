"""Round-trip and property tests for the eCPRI/O-RAN header codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fronthaul.ecpri import (
    ECPRI_TYPE_IQ_DATA,
    ECPRI_TYPE_RT_CONTROL,
    HEADER_BYTES,
    SECTION_TYPE_DL,
    EcpriCodecError,
    decode_header,
    encode_header,
    parse_timing_fields,
)
from repro.phy.numerology import SlotAddress


class TestRoundTrip:
    def test_simple_header(self):
        encoded = encode_header(
            ECPRI_TYPE_RT_CONTROL, 128, eaxc_id=7, sequence=42,
            address=SlotAddress(frame=513, subframe=9, slot=1),
            symbol=13, section_type=SECTION_TYPE_DL,
        )
        assert len(encoded) == HEADER_BYTES
        header = decode_header(encoded)
        assert header.message_type == ECPRI_TYPE_RT_CONTROL
        assert header.payload_bytes == 128
        assert header.eaxc_id == 7
        assert header.sequence == 42
        assert header.address == SlotAddress(frame=513, subframe=9, slot=1)
        assert header.symbol == 13
        assert header.section_type == SECTION_TYPE_DL

    @given(
        frame=st.integers(0, 1023),
        subframe=st.integers(0, 9),
        slot=st.integers(0, 63),
        symbol=st.integers(0, 13),
        eaxc=st.integers(0, 0xFFFF),
        seq=st.integers(0, 255),
        payload=st.integers(0, 0xFFFF),
    )
    @settings(max_examples=150, deadline=None)
    def test_timing_fields_roundtrip(
        self, frame, subframe, slot, symbol, eaxc, seq, payload
    ):
        """The timing fields the switch parses must round-trip exactly
        for every legal value — migration alignment depends on them."""
        address = SlotAddress(frame=frame, subframe=subframe, slot=slot)
        encoded = encode_header(
            ECPRI_TYPE_IQ_DATA, payload, eaxc, seq, address, symbol
        )
        header = decode_header(encoded)
        assert header.address == address
        assert header.symbol == symbol
        assert header.eaxc_id == eaxc
        assert header.sequence == seq
        assert header.payload_bytes == payload
        assert parse_timing_fields(encoded) == (frame, subframe, slot)


class TestValidation:
    def test_truncated_rejected(self):
        with pytest.raises(EcpriCodecError):
            decode_header(b"\x10\x00\x00")

    def test_bad_revision_rejected(self):
        encoded = bytearray(
            encode_header(0, 0, 0, 0, SlotAddress(0, 0, 0))
        )
        encoded[0] = 0x20  # Revision 2.
        with pytest.raises(EcpriCodecError):
            decode_header(bytes(encoded))

    @pytest.mark.parametrize(
        "address",
        [
            SlotAddress(frame=1024, subframe=0, slot=0),
            SlotAddress(frame=0, subframe=10, slot=0),
            SlotAddress(frame=0, subframe=0, slot=64),
        ],
    )
    def test_out_of_range_fields_rejected(self, address):
        with pytest.raises(EcpriCodecError):
            encode_header(0, 0, 0, 0, address)

    def test_symbol_out_of_range_rejected(self):
        with pytest.raises(EcpriCodecError):
            encode_header(0, 0, 0, 0, SlotAddress(0, 0, 0), symbol=16)
