"""Tests for the in-switch fronthaul middlebox (§5)."""

import pytest

from repro.core.commands import FailureNotification, MigrateOnSlot, SetMonitor, SLINGSHOT_CMD_BYTES
from repro.core.fh_middlebox import FronthaulMiddlebox, MiddleboxConfig
from repro.fronthaul.oran import CplaneMessage, UplaneUplink
from repro.net.addresses import MacAddress
from repro.net.packet import EtherType, EthernetFrame
from repro.net.switch import Switch
from repro.phy.channel import ChannelRealization
from repro.phy.modulation import Modulation
from repro.phy.numerology import Numerology, SlotClock
from repro.phy.transport import LinkDirection, TransportBlock
from repro.sim.engine import Simulator

RU_MAC = MacAddress(0x10)
PHY0_MAC = MacAddress(0x20)
PHY1_MAC = MacAddress(0x21)
ORION_MAC = MacAddress(0x30)


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def receive_frame(self, frame, ingress):
        self.received.append((self.sim.now, frame))


def build_fabric():
    """Switch + middlebox with an RU port, two PHY ports, an Orion port."""
    sim = Simulator()
    switch = Switch(sim, pipeline_latency_ns=0)
    mbox = FronthaulMiddlebox(sim)
    mbox.install_on(switch)
    nodes = {}
    for name, mac in (("ru", RU_MAC), ("phy0", PHY0_MAC), ("phy1", PHY1_MAC), ("orion", ORION_MAC)):
        sink = Sink(sim)
        port = switch.attach(sink, latency_ns=0, name=name)
        nodes[name] = (sink, port)
    mbox.register_ru(0, RU_MAC, nodes["ru"][1].number, initial_phy=0)
    mbox.register_phy(0, PHY0_MAC, nodes["phy0"][1].number)
    mbox.register_phy(1, PHY1_MAC, nodes["phy1"][1].number)
    mbox.register_l2_host(ORION_MAC, nodes["orion"][1].number)
    mbox.set_notification_target(ORION_MAC, nodes["orion"][1].number)
    return sim, switch, mbox, nodes


def ul_frame(abs_slot, src=RU_MAC):
    clock = SlotClock(Numerology())
    block = TransportBlock(
        ue_id=1, direction=LinkDirection.UPLINK, harq_process=0,
        modulation=Modulation.QPSK, prbs=10, data=[], size_bytes=100,
    )
    payload = UplaneUplink(
        ru_id=0, address=clock.address_of(abs_slot), abs_slot=abs_slot,
        block=block, realization=ChannelRealization(15.0),
    )
    return EthernetFrame(
        src=src, dst=MacAddress(0xFFFF), ethertype=EtherType.ECPRI,
        payload=payload, wire_bytes=200,
    )


def dl_frame(abs_slot, src_mac=PHY0_MAC, src_phy=0):
    clock = SlotClock(Numerology())
    payload = CplaneMessage(
        ru_id=0, address=clock.address_of(abs_slot), abs_slot=abs_slot,
        source_phy_id=src_phy,
    )
    return EthernetFrame(
        src=src_mac, dst=MacAddress(0), ethertype=EtherType.ECPRI,
        payload=payload, wire_bytes=100,
    )


def command_frame(payload):
    return EthernetFrame(
        src=ORION_MAC, dst=MacAddress(0), ethertype=EtherType.SLINGSHOT,
        payload=payload, wire_bytes=SLINGSHOT_CMD_BYTES,
    )


class TestSteering:
    def test_uplink_steered_to_initial_primary(self):
        sim, switch, mbox, nodes = build_fabric()
        switch.inject(ul_frame(10), in_port=nodes["ru"][1].number)
        sim.run_until(sim.now + 10_000)
        assert len(nodes["phy0"][0].received) == 1
        assert nodes["phy0"][0].received[0][1].dst == PHY0_MAC
        assert len(nodes["phy1"][0].received) == 0

    def test_downlink_from_active_forwarded_to_ru(self):
        sim, switch, mbox, nodes = build_fabric()
        switch.inject(dl_frame(10), in_port=nodes["phy0"][1].number)
        sim.run_until(sim.now + 10_000)
        assert len(nodes["ru"][0].received) == 1
        assert nodes["ru"][0].received[0][1].dst == RU_MAC

    def test_downlink_from_standby_filtered(self):
        sim, switch, mbox, nodes = build_fabric()
        switch.inject(
            dl_frame(10, src_mac=PHY1_MAC, src_phy=1),
            in_port=nodes["phy1"][1].number,
        )
        sim.run_until(sim.now + 10_000)
        assert len(nodes["ru"][0].received) == 0
        assert mbox.stats.dl_filtered == 1

    def test_filtered_standby_still_counts_as_heartbeat(self):
        sim, switch, mbox, nodes = build_fabric()
        mbox.detector.set_monitor(1, True)
        mbox.detector.counters.write(1, 10)
        # inject() runs the pipeline synchronously; the heartbeat reset
        # happens before any timer tick can fire.
        switch.inject(
            dl_frame(10, src_mac=PHY1_MAC, src_phy=1),
            in_port=nodes["phy1"][1].number,
        )
        assert mbox.detector.counters.read(1) == 0

    def test_unknown_source_dropped(self):
        sim, switch, mbox, nodes = build_fabric()
        switch.inject(ul_frame(10, src=MacAddress(0x99)), in_port=9)
        sim.run_until(sim.now + 10_000)
        assert mbox.stats.unknown_dropped == 1


class TestMigrateOnSlot:
    def test_packets_before_boundary_stay_with_primary(self):
        sim, switch, mbox, nodes = build_fabric()
        switch.inject(command_frame(MigrateOnSlot(ru_id=0, dest_phy_id=1, slot=100)))
        sim.run_until(sim.now + 10_000)
        switch.inject(ul_frame(99), in_port=nodes["ru"][1].number)
        sim.run_until(sim.now + 10_000)
        assert len(nodes["phy0"][0].received) == 1
        assert len(nodes["phy1"][0].received) == 0

    def test_boundary_packet_flips_mapping(self):
        sim, switch, mbox, nodes = build_fabric()
        switch.inject(command_frame(MigrateOnSlot(ru_id=0, dest_phy_id=1, slot=100)))
        sim.run_until(sim.now + 10_000)
        switch.inject(ul_frame(100), in_port=nodes["ru"][1].number)
        sim.run_until(sim.now + 10_000)
        assert len(nodes["phy1"][0].received) == 1
        assert mbox.stats.migrations_executed == 1
        assert mbox.ru_to_phy.read(0) == 1
        # Subsequent packets follow the new mapping without a pending request.
        switch.inject(ul_frame(101), in_port=nodes["ru"][1].number)
        sim.run_until(sim.now + 10_000)
        assert len(nodes["phy1"][0].received) == 2

    def test_exactly_at_boundary_no_mixed_slot(self):
        """For any single slot, the RU hears exactly one PHY."""
        sim, switch, mbox, nodes = build_fabric()
        switch.inject(command_frame(MigrateOnSlot(ru_id=0, dest_phy_id=1, slot=100)))
        sim.run_until(sim.now + 10_000)
        # Old primary still emits slot 99; new one emits slot 100.
        switch.inject(dl_frame(99, PHY0_MAC, 0), in_port=nodes["phy0"][1].number)
        switch.inject(dl_frame(100, PHY0_MAC, 0), in_port=nodes["phy0"][1].number)
        switch.inject(dl_frame(99, PHY1_MAC, 1), in_port=nodes["phy1"][1].number)
        switch.inject(dl_frame(100, PHY1_MAC, 1), in_port=nodes["phy1"][1].number)
        sim.run_until(sim.now + 10_000)
        per_slot_sources = {}
        for _, frame in nodes["ru"][0].received:
            per_slot_sources.setdefault(frame.payload.abs_slot, set()).add(
                frame.payload.source_phy_id
            )
        assert per_slot_sources == {99: {0}, 100: {1}}

    def test_downlink_for_future_boundary_accepted_from_dest(self):
        """The new primary's C-plane for the boundary slot is emitted
        *before* any uplink packet of that slot arrives; the pending
        request must already steer it."""
        sim, switch, mbox, nodes = build_fabric()
        switch.inject(command_frame(MigrateOnSlot(ru_id=0, dest_phy_id=1, slot=100)))
        sim.run_until(sim.now + 10_000)
        switch.inject(dl_frame(100, PHY1_MAC, 1), in_port=nodes["phy1"][1].number)
        sim.run_until(sim.now + 10_000)
        assert len(nodes["ru"][0].received) == 1

    def test_unaligned_mode_flips_immediately(self):
        sim, switch, mbox, nodes = build_fabric()
        mbox.config.align_to_tti = False
        switch.inject(command_frame(MigrateOnSlot(ru_id=0, dest_phy_id=1, slot=10**9)))
        sim.run_until(sim.now + 10_000)
        switch.inject(ul_frame(5), in_port=nodes["ru"][1].number)
        sim.run_until(sim.now + 10_000)
        assert len(nodes["phy1"][0].received) == 1


class TestFailureNotificationPath:
    def test_detection_emits_notification_to_orion(self):
        sim, switch, mbox, nodes = build_fabric()
        mbox.detector.set_monitor(0, True)
        # No heartbeats at all: the pktgen ticks saturate the counter.
        sim.run_until(mbox.config.detector.timeout_ns * 2)
        orion_frames = nodes["orion"][0].received
        assert len(orion_frames) == 1
        notification = orion_frames[0][1].payload
        assert isinstance(notification, FailureNotification)
        assert notification.phy_id == 0

    def test_set_monitor_command_via_packet(self):
        sim, switch, mbox, nodes = build_fabric()
        switch.inject(command_frame(SetMonitor(phy_id=1, enabled=True)))
        sim.run_until(1000)
        assert mbox.detector.is_monitored(1)
        switch.inject(command_frame(SetMonitor(phy_id=1, enabled=False)))
        sim.run_until(2000)
        assert not mbox.detector.is_monitored(1)


class TestL2Fallback:
    def test_non_fronthaul_traffic_forwarded_by_mac(self):
        sim, switch, mbox, nodes = build_fabric()
        frame = EthernetFrame(
            src=ORION_MAC, dst=PHY1_MAC, ethertype=EtherType.IPV4,
            payload="udp", wire_bytes=100,
        )
        switch.inject(frame, in_port=nodes["orion"][1].number)
        sim.run_until(sim.now + 10_000)
        assert len(nodes["phy1"][0].received) == 1
