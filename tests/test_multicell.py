"""Tests for multi-cell deployments with shared PHY servers.

Each of the two servers simultaneously hosts one cell's primary PHY and
the other cell's null-FAPI standby — the economical placement the paper
describes for real deployments (§8).
"""

import pytest

from repro.cell.config import CellConfig, UeProfile
from repro.cell.multicell import build_dual_cell_deployment
from repro.sim.units import US, s_to_ns


def config(seed=50):
    return CellConfig(
        seed=seed,
        ue_profiles=[UeProfile(ue_id=0, name="UE", mean_snr_db=16.0)],
    )


@pytest.fixture(scope="module")
def steady():
    deployment = build_dual_cell_deployment(config(), ues_per_cell=1)
    deployment.run_for(s_to_ns(0.5))
    return deployment


class TestDualCellSteadyState:
    def test_both_cells_serve_traffic(self, steady):
        for site in steady.cells:
            assert site.ru.stats.slots_with_control > 900
            assert site.l2.stats.ul_crc_ok > 0

    def test_each_server_hosts_primary_and_standby_work(self, steady):
        """Both servers do real work (their own cell) AND null slots
        (the other cell's standby) inside one PHY process."""
        for node in steady.phy_servers:
            assert node.phy.cpu.work_slots > 0
            assert node.phy.cpu.null_slots > 0
            assert len(node.phy.cells) == 2  # Hosts both cells.

    def test_standby_streams_filtered_per_ru(self, steady):
        assert steady.middlebox.stats.dl_filtered > 1500
        for site in steady.cells:
            assert site.ru.stats.conflicting_source_slots == 0

    def test_no_rlf_anywhere(self, steady):
        for ue in steady.all_ues():
            assert ue.stats.rlf_events == 0


class TestDualCellFailover:
    def test_killing_one_server_fails_over_only_its_cell(self):
        deployment = build_dual_cell_deployment(config(seed=51), ues_per_cell=1)
        deployment.run_for(s_to_ns(0.5))
        deployment.kill_phy_at(0, deployment.sim.now + 100 * US)
        deployment.run_for(s_to_ns(0.5))
        # Cell 0 (primary was server 0) migrated to server 1.
        assignment0 = deployment.l2_orion.cells[0]
        assert assignment0.primary_phy == 1
        # Cell 1 kept its primary (server 1); only its standby died.
        assignment1 = deployment.l2_orion.cells[1]
        assert assignment1.primary_phy == 1
        # Exactly one migration executed (cell 0's).
        assert deployment.middlebox.stats.migrations_executed == 1
        # No UE in either cell disconnected.
        for ue in deployment.all_ues():
            assert ue.stats.rlf_events == 0
            assert ue.attached

    def test_survivor_server_carries_both_cells(self):
        deployment = build_dual_cell_deployment(config(seed=52), ues_per_cell=1)
        deployment.run_for(s_to_ns(0.5))
        deployment.kill_phy_at(0, deployment.sim.now)
        deployment.run_for(s_to_ns(0.5))
        survivor = deployment.phy_servers[1].phy
        decodes_before = survivor.cpu.fec_decodes
        deployment.run_for(s_to_ns(0.3))
        # The survivor now decodes uplink for both cells.
        assert survivor.cpu.fec_decodes > decodes_before
        served_rus = {cell.ru_id for cell in survivor.cells.values() if cell.started}
        assert served_rus == {0, 1}

    def test_planned_migration_per_cell_is_independent(self):
        deployment = build_dual_cell_deployment(config(seed=53), ues_per_cell=1)
        deployment.run_for(s_to_ns(0.4))
        deployment.l2_orion.planned_migration(1)
        deployment.run_for(s_to_ns(0.3))
        # Cell 1 swapped onto server 0; cell 0 untouched.
        assert deployment.l2_orion.cells[1].primary_phy == 0
        assert deployment.l2_orion.cells[0].primary_phy == 0
        assert deployment.middlebox.ru_to_phy.read(1) == 0
        assert deployment.middlebox.ru_to_phy.read(0) == 0
        for ue in deployment.all_ues():
            assert ue.stats.rlf_events == 0
