"""Tests for FAPI channel models (SHM)."""

import pytest

from repro.fapi.channels import DuplexShmChannel, ShmChannel
from repro.fapi.messages import SlotIndication, UlTtiRequest
from repro.sim.engine import Simulator
from repro.sim.units import US


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def receive_fapi(self, message, channel):
        self.received.append((self.sim.now, message, channel))


class TestShmChannel:
    def test_delivery_after_latency(self):
        sim = Simulator()
        sink = Sink(sim)
        channel = ShmChannel(sim, sink, latency_ns=1 * US)
        message = SlotIndication(cell_id=0, slot=5)
        channel.send(message)
        sim.run()
        time, delivered, via = sink.received[0]
        assert time == 1 * US
        assert delivered is message
        assert via is channel

    def test_order_preserved(self):
        sim = Simulator()
        sink = Sink(sim)
        channel = ShmChannel(sim, sink, latency_ns=1 * US)
        for slot in range(5):
            channel.send(SlotIndication(cell_id=0, slot=slot))
        sim.run()
        assert [m.slot for _, m, _ in sink.received] == [0, 1, 2, 3, 4]

    def test_unconnected_channel_raises(self):
        sim = Simulator()
        channel = ShmChannel(sim, None)
        with pytest.raises(RuntimeError):
            channel.send(SlotIndication(cell_id=0, slot=0))

    def test_two_phase_wiring(self):
        sim = Simulator()
        channel = ShmChannel(sim, None)
        sink = Sink(sim)
        channel.connect(sink)
        channel.send(SlotIndication(cell_id=0, slot=1))
        sim.run()
        assert len(sink.received) == 1

    def test_counter(self):
        sim = Simulator()
        channel = ShmChannel(sim, Sink(sim))
        channel.send(SlotIndication(cell_id=0, slot=0))
        channel.send(SlotIndication(cell_id=0, slot=1))
        assert channel.messages_sent == 2

    def test_duplex_pairs(self):
        sim = Simulator()
        a, b = Sink(sim), Sink(sim)
        duplex = DuplexShmChannel(sim, latency_ns=2 * US)
        duplex.connect(a, b)
        duplex.a_to_b.send(UlTtiRequest(cell_id=0, slot=3, pdus=[]))
        duplex.b_to_a.send(SlotIndication(cell_id=0, slot=3))
        sim.run()
        assert isinstance(b.received[0][1], UlTtiRequest)
        assert isinstance(a.received[0][1], SlotIndication)
