"""Tests for HARQ soft buffers and the SNR moving-average filter."""

import numpy as np
import pytest

from repro.phy.harq import HARQ_MAX_RETX, HarqBuffer, HarqProcessPool
from repro.phy.snr_filter import SnrMovingAverage


class TestHarqBuffer:
    def test_fresh_buffer_is_empty(self):
        buf = HarqBuffer()
        assert not buf.occupied
        assert buf.transmissions == 0

    def test_combine_accumulates_llrs(self):
        buf = HarqBuffer()
        llrs = np.array([1.0, -2.0, 3.0])
        first = buf.combine(llrs)
        assert np.array_equal(first, llrs)
        second = buf.combine(llrs)
        assert np.array_equal(second, 2 * llrs)
        assert buf.transmissions == 2

    def test_clear_releases_everything(self):
        buf = HarqBuffer()
        buf.combine(np.ones(4))
        buf.tb_id = 7
        buf.clear()
        assert not buf.occupied
        assert buf.tb_id is None


class TestHarqProcessPool:
    def test_processes_are_independent(self):
        pool = HarqProcessPool()
        pool.combine(1, 0, tb_id=100, llrs=np.ones(4), new_data=True)
        other = pool.combine(1, 1, tb_id=101, llrs=2 * np.ones(4), new_data=True)
        assert np.array_equal(other, 2 * np.ones(4))

    def test_retransmission_combines_with_original(self):
        pool = HarqProcessPool()
        pool.combine(1, 0, tb_id=5, llrs=np.ones(4), new_data=True)
        combined = pool.combine(1, 0, tb_id=5, llrs=np.ones(4), new_data=False)
        assert np.array_equal(combined, 2 * np.ones(4))

    def test_new_data_flushes_process(self):
        pool = HarqProcessPool()
        pool.combine(1, 0, tb_id=5, llrs=np.ones(4), new_data=True)
        fresh = pool.combine(1, 0, tb_id=6, llrs=3 * np.ones(4), new_data=True)
        assert np.array_equal(fresh, 3 * np.ones(4))

    def test_orphan_retransmission_counted_as_interrupted(self):
        """A retransmission whose original lives in a *different* (dead)
        PHY's buffer is exactly what migration causes (Table 2's
        'interrupted HARQ seqs')."""
        pool = HarqProcessPool()
        pool.combine(1, 0, tb_id=9, llrs=np.ones(4), new_data=False)
        assert pool.stats.lost_to_migration == 1

    def test_release_after_success(self):
        pool = HarqProcessPool()
        pool.combine(1, 0, tb_id=5, llrs=np.ones(4), new_data=True)
        pool.release(1, 0)
        assert pool.occupied_count() == 0
        assert pool.stats.cleared == 1

    def test_discard_all_models_migration(self):
        pool = HarqProcessPool()
        pool.combine(1, 0, tb_id=1, llrs=np.ones(4), new_data=True)
        pool.combine(2, 3, tb_id=2, llrs=np.ones(4), new_data=True)
        dropped = pool.discard_all()
        assert dropped == 2
        assert pool.occupied_count() == 0

    def test_soft_bytes_accounting(self):
        pool = HarqProcessPool()
        pool.combine(1, 0, tb_id=1, llrs=np.ones(648), new_data=True)
        assert pool.soft_bytes(bytes_per_llr=2) == 1296

    def test_max_retx_constant_matches_5g(self):
        assert HARQ_MAX_RETX == 3


class TestSnrFilter:
    def test_first_sample_initializes(self):
        filt = SnrMovingAverage(alpha=0.1)
        assert filt.update(1, 15.0) == pytest.approx(15.0)

    def test_default_before_any_measurement(self):
        filt = SnrMovingAverage(default_snr_db=10.0)
        assert filt.report(42) == 10.0

    def test_ewma_converges_to_step(self):
        filt = SnrMovingAverage(alpha=0.1)
        filt.update(1, 0.0)
        for _ in range(60):
            filt.update(1, 20.0)
        assert filt.report(1) == pytest.approx(20.0, abs=0.1)

    def test_convergence_speed_matches_25ms_claim(self):
        """With one UL measurement per 2.5 ms DDDSU period and alpha=0.1,
        a 10 dB step converges within ~1 dB in <= 25 ms (paper §4.2)."""
        filt = SnrMovingAverage(alpha=0.1)
        filt.update(1, 10.0)
        measurements_in_25ms = 10
        for _ in range(measurements_in_25ms):
            filt.update(1, 20.0)
        assert abs(filt.report(1) - 20.0) < 3.7

    def test_discard_all_resets_to_default(self):
        filt = SnrMovingAverage(default_snr_db=10.0)
        filt.update(1, 25.0)
        filt.discard_all()
        assert filt.report(1) == 10.0
        assert filt.samples(1) == 0

    def test_converged_requires_min_samples(self):
        filt = SnrMovingAverage()
        for _ in range(9):
            filt.update(1, 12.0)
        assert not filt.converged(1, min_samples=10)
        filt.update(1, 12.0)
        assert filt.converged(1, min_samples=10)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            SnrMovingAverage(alpha=0.0)
        with pytest.raises(ValueError):
            SnrMovingAverage(alpha=1.5)
