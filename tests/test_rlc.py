"""Tests for RLC AM/UM: segmentation, reassembly, status-driven ARQ."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.l2.rlc import (
    RlcBearerConfig,
    RlcMode,
    RlcPdu,
    RlcReceiver,
    RlcStatus,
    RlcTransmitter,
)


def am_config(**kwargs):
    return RlcBearerConfig(bearer_id=1, mode=RlcMode.AM, **kwargs)


def um_config(**kwargs):
    return RlcBearerConfig(bearer_id=2, mode=RlcMode.UM, **kwargs)


class TestTransmitterBasics:
    def test_pull_returns_whole_small_sdu(self):
        tx = RlcTransmitter(um_config())
        tx.enqueue("sdu-a", 100)
        pdus = tx.pull(1000)
        assert len(pdus) == 1
        assert pdus[0].sdu == "sdu-a"
        assert pdus[0].is_last_segment

    def test_segmentation_across_pulls(self):
        tx = RlcTransmitter(um_config())
        tx.enqueue("big", 1000)
        first = tx.pull(505)  # 500 payload after 5B header.
        assert len(first) == 1
        assert not first[0].is_last_segment
        assert first[0].length == 500
        second = tx.pull(505)
        assert second[0].is_last_segment
        assert second[0].offset == 500

    def test_multiple_sdus_fill_one_tb(self):
        tx = RlcTransmitter(um_config())
        for i in range(5):
            tx.enqueue(f"sdu{i}", 50)
        pdus = tx.pull(1000)
        assert len(pdus) == 5

    def test_sequence_numbers_monotonic(self):
        tx = RlcTransmitter(um_config())
        for i in range(4):
            tx.enqueue(i, 10)
        pdus = tx.pull(1000)
        assert [p.seq for p in pdus] == [0, 1, 2, 3]

    def test_queue_overflow_drops(self):
        tx = RlcTransmitter(um_config(), queue_limit_bytes=100)
        assert tx.enqueue("a", 80)
        assert not tx.enqueue("b", 40)
        assert tx.stats.sdus_dropped_overflow == 1

    def test_backlog_tracks_queued_bytes(self):
        tx = RlcTransmitter(um_config())
        tx.enqueue("a", 300)
        assert tx.backlog_bytes == 300
        tx.pull(1000)
        assert tx.backlog_bytes == 0

    def test_reset_clears_everything(self):
        tx = RlcTransmitter(am_config())
        tx.enqueue("a", 100)
        tx.pull(1000)
        tx.reset()
        assert not tx.has_data
        assert tx.pull(1000) == []


class TestReceiverReassembly:
    def test_in_order_delivery(self):
        tx = RlcTransmitter(um_config())
        rx = RlcReceiver(um_config())
        for i in range(3):
            tx.enqueue(f"s{i}", 40)
        delivered = []
        for pdu in tx.pull(1000):
            delivered.extend(rx.on_pdu(pdu))
        assert delivered == ["s0", "s1", "s2"]

    def test_segmented_sdu_reassembled(self):
        tx = RlcTransmitter(um_config())
        rx = RlcReceiver(um_config())
        tx.enqueue("big", 1000)
        pdus = tx.pull(405) + tx.pull(405) + tx.pull(405)
        delivered = []
        for pdu in pdus:
            delivered.extend(rx.on_pdu(pdu))
        assert delivered == ["big"]

    def test_out_of_order_held_then_released(self):
        tx = RlcTransmitter(am_config())
        rx = RlcReceiver(am_config())
        tx.enqueue("a", 40)
        tx.enqueue("b", 40)
        p0, p1 = tx.pull(1000)
        assert rx.on_pdu(p1) == []  # Held: gap at seq 0.
        assert rx.on_pdu(p0) == ["a", "b"]

    def test_duplicates_ignored(self):
        tx = RlcTransmitter(am_config())
        rx = RlcReceiver(am_config())
        tx.enqueue("a", 40)
        (pdu,) = tx.pull(1000)
        assert rx.on_pdu(pdu) == ["a"]
        assert rx.on_pdu(pdu) == []
        assert rx.stats.duplicates == 1

    def test_am_holds_gaps_indefinitely(self):
        rx = RlcReceiver(am_config())
        late = RlcPdu(1, seq=5, sdu_id=9, sdu="x", offset=0, length=10,
                      sdu_total=10, is_last_segment=True)
        assert rx.on_pdu(late) == []
        assert rx.stats.sdus_delivered == 0


class TestUmDelivery:
    """NR RLC UM: complete SDUs deliver immediately (no cross-SDU
    ordering); only same-SDU segments wait, under t-Reassembly."""

    def _pdu(self, seq, sdu=None):
        return RlcPdu(2, seq=seq, sdu_id=seq, sdu=sdu or f"s{seq}", offset=0,
                      length=10, sdu_total=10, is_last_segment=True)

    def _segment(self, seq, sdu_id, offset, length, total, last, sdu=None):
        return RlcPdu(2, seq=seq, sdu_id=sdu_id,
                      sdu=sdu if last else None, offset=offset, length=length,
                      sdu_total=total, is_last_segment=last)

    def test_complete_sdus_deliver_despite_gap(self):
        """A lost PDU never blocks later complete SDUs — the property
        that keeps Table 2 free of 10 ms blackouts."""
        rx = RlcReceiver(um_config())
        assert rx.on_pdu(self._pdu(0)) == ["s0"]
        # Seq 1 lost entirely; seq 2 still delivers immediately.
        assert rx.on_pdu(self._pdu(2)) == ["s2"]
        assert rx.on_pdu(self._pdu(3)) == ["s3"]

    def test_segmented_sdu_waits_for_all_segments(self):
        clock = {"now": 0}
        rx = RlcReceiver(
            um_config(um_t_reassembly_ns=1000), now_fn=lambda: clock["now"]
        )
        assert rx.on_pdu(self._segment(0, 9, 0, 10, 20, False)) == []
        assert rx.on_pdu(self._segment(1, 9, 10, 10, 20, True, sdu="big")) == ["big"]
        assert rx.stats.sdus_lost == 0

    def test_partial_sdu_expires_after_t_reassembly(self):
        clock = {"now": 0}
        rx = RlcReceiver(
            um_config(um_t_reassembly_ns=100), now_fn=lambda: clock["now"]
        )
        rx.on_pdu(self._segment(0, 9, 0, 10, 20, False))
        clock["now"] = 300
        # Any later PDU triggers expiry of the stale partial.
        rx.on_pdu(self._pdu(5))
        assert rx.stats.sdus_lost == 1
        # The late last segment now finds no partial and cannot complete.
        delivered = rx.on_pdu(self._segment(1, 9, 10, 10, 20, True, sdu="big"))
        assert delivered == []

    def test_duplicate_pdus_dropped(self):
        rx = RlcReceiver(um_config())
        rx.on_pdu(self._pdu(0))
        assert rx.on_pdu(self._pdu(0)) == []
        assert rx.stats.duplicates == 1

    def test_out_of_order_segments_still_assemble(self):
        clock = {"now": 0}
        rx = RlcReceiver(
            um_config(um_t_reassembly_ns=10_000), now_fn=lambda: clock["now"]
        )
        assert rx.on_pdu(self._segment(1, 9, 10, 10, 20, True, sdu="big")) == []
        assert rx.on_pdu(self._segment(0, 9, 0, 10, 20, False)) == ["big"]


class TestAmStatusRetransmission:
    def test_status_reports_gap(self):
        tx = RlcTransmitter(am_config())
        rx = RlcReceiver(am_config())
        for i in range(3):
            tx.enqueue(f"s{i}", 40)
        p0, p1, p2 = tx.pull(1000)
        rx.on_pdu(p0)
        rx.on_pdu(p2)  # p1 missing.
        status = rx.build_status()
        assert status.nack_seqs == [1]
        assert status.ack_seq == 3

    def test_nack_triggers_retransmission(self):
        tx = RlcTransmitter(am_config())
        rx = RlcReceiver(am_config())
        for i in range(3):
            tx.enqueue(f"s{i}", 40)
        p0, p1, p2 = tx.pull(1000)
        rx.on_pdu(p0)
        rx.on_pdu(p2)
        tx.on_status(rx.build_status())
        retx = tx.pull(1000)
        assert len(retx) == 1
        assert retx[0].seq == 1
        assert rx.on_pdu(retx[0]) == ["s1", "s2"]

    def test_ack_releases_flight(self):
        tx = RlcTransmitter(am_config())
        tx.enqueue("a", 40)
        (pdu,) = tx.pull(1000)
        tx.on_status(RlcStatus(bearer_id=1, ack_seq=1, nack_seqs=[]))
        # Nacking it later is a no-op: it left the flight.
        tx.on_status(RlcStatus(bearer_id=1, ack_seq=1, nack_seqs=[0]))
        assert tx.pull(1000) == []

    def test_max_retx_discards(self):
        config = am_config(max_retx=2)
        tx = RlcTransmitter(config)
        tx.enqueue("a", 40)
        tx.pull(1000)
        for _ in range(3):
            tx.on_status(RlcStatus(bearer_id=1, ack_seq=1, nack_seqs=[0]))
            tx.pull(1000)
        assert tx.stats.pdus_discarded == 1

    def test_retx_has_priority_over_new_data(self):
        tx = RlcTransmitter(am_config())
        tx.enqueue("a", 40)
        tx.pull(1000)
        tx.enqueue("b", 40)
        tx.on_status(RlcStatus(bearer_id=1, ack_seq=1, nack_seqs=[0]))
        pdus = tx.pull(50)  # Room for only one PDU.
        assert pdus[0].sdu == "a"

    def test_status_due_only_after_traffic(self):
        rx = RlcReceiver(am_config())
        assert not rx.status_due
        rx.on_pdu(RlcPdu(1, 0, 1, "a", 0, 10, 10, True))
        assert rx.status_due
        rx.build_status()
        assert not rx.status_due


class TestRlcProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=3000), min_size=1, max_size=30),
        st.integers(min_value=60, max_value=4000),
    )
    @settings(max_examples=40, deadline=None)
    def test_lossless_path_delivers_all_sdus_in_order(self, sizes, tb_bytes):
        """Any SDU size mix over any TB size arrives complete, in order."""
        tx = RlcTransmitter(am_config(), queue_limit_bytes=10**9)
        rx = RlcReceiver(am_config())
        for index, size in enumerate(sizes):
            tx.enqueue(index, size)
        delivered = []
        for _ in range(10_000):
            pdus = tx.pull(tb_bytes)
            if not pdus:
                break
            for pdu in pdus:
                delivered.extend(rx.on_pdu(pdu))
        assert delivered == list(range(len(sizes)))

    @given(
        st.lists(st.integers(min_value=1, max_value=500), min_size=2, max_size=15),
        st.sets(st.integers(min_value=0, max_value=40), max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_am_recovers_any_loss_pattern(self, sizes, lost_indices):
        """AM + status retransmission recovers arbitrary PDU losses."""
        tx = RlcTransmitter(am_config(), queue_limit_bytes=10**9)
        rx = RlcReceiver(am_config())
        for index, size in enumerate(sizes):
            tx.enqueue(index, size)
        delivered = []
        idle_rounds = 0
        for round_index in range(60):
            pdus = tx.pull(300)
            if not pdus:
                # Periodic status exchange (covers trailing losses via
                # the poll-retransmit rule, which needs two reports).
                tx.on_status(rx.build_status())
                pdus = tx.pull(300)
            if not pdus:
                idle_rounds += 1
                if idle_rounds >= 4:
                    break
                continue
            idle_rounds = 0
            for i, pdu in enumerate(pdus):
                if round_index == 0 and i in lost_indices:
                    continue  # Drop on first transmission only.
                delivered.extend(rx.on_pdu(pdu))
        assert delivered == list(range(len(sizes)))
