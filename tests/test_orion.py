"""Tests for Orion — the L2-to-PHY FAPI middlebox (§6)."""

import pytest

from repro.core.commands import FailureNotification, MigrateOnSlot, SetMonitor
from repro.core.orion import (
    CellAssignment,
    L2SideOrion,
    OrionConfig,
    OrionDatagram,
    PhySideOrion,
)
from repro.fapi.channels import ShmChannel
from repro.fapi.messages import (
    ConfigRequest,
    CrcIndication,
    CrcResult,
    DlTtiRequest,
    PuschPdu,
    SlotIndication,
    StartRequest,
    TxDataRequest,
    UlTtiRequest,
    is_null_request,
)
from repro.net.addresses import MacAddress
from repro.net.link import Link
from repro.net.packet import EtherType, EthernetFrame
from repro.phy.modulation import Modulation
from repro.phy.numerology import Numerology, SlotClock
from repro.sim.engine import Simulator

L2_ORION_MAC = MacAddress(0x100)
PHY0_ORION_MAC = MacAddress(0x200)
PHY1_ORION_MAC = MacAddress(0x201)


class FrameSink:
    """Captures frames an Orion pushes onto its NIC."""

    def __init__(self, sim):
        self.sim = sim
        self.frames = []

    def receive_frame(self, frame, ingress):
        self.frames.append(frame)

    def by_dst(self, mac):
        return [f for f in self.frames if f.dst == mac]


class MessageSink:
    """Captures FAPI messages delivered over a SHM channel."""

    def __init__(self):
        self.messages = []

    def receive_fapi(self, message, channel):
        self.messages.append(message)


def build_l2_orion(sim):
    orion = L2SideOrion(
        sim,
        mac=L2_ORION_MAC,
        slot_clock=SlotClock(Numerology()),
        config=OrionConfig(service_base_ns=0, service_per_byte_ns=0.0),
    )
    nic = FrameSink(sim)
    orion.uplink = Link(sim, nic, bandwidth_bps=0, latency_ns=0)
    orion.register_phy_server(0, PHY0_ORION_MAC)
    orion.register_phy_server(1, PHY1_ORION_MAC)
    orion.assign_cell(cell_id=0, ru_id=0, primary_phy=0, secondary_phy=1)
    l2_sink = MessageSink()
    orion.shm_to_l2 = ShmChannel(sim, l2_sink, latency_ns=0)
    return orion, nic, l2_sink


def tti_with_work(slot):
    pdu = PuschPdu(
        ue_id=1, harq_process=0, modulation=Modulation.QPSK,
        prbs=10, new_data=True, tb_id=5, tb_bytes=100,
    )
    return UlTtiRequest(cell_id=0, slot=slot, pdus=[pdu])


def deliver_response(orion, message, phy_id):
    frame = EthernetFrame(
        src=PHY0_ORION_MAC, dst=L2_ORION_MAC, ethertype=EtherType.IPV4,
        payload=OrionDatagram(message=message, phy_id=phy_id, is_response=True),
        wire_bytes=100,
    )
    orion.receive_frame(frame, ingress=None)


class TestNullFapiDuplication:
    def test_real_to_primary_null_to_secondary(self):
        sim = Simulator()
        orion, nic, _ = build_l2_orion(sim)
        orion.receive_fapi(tti_with_work(50), channel=None)
        sim.run()
        to_primary = nic.by_dst(PHY0_ORION_MAC)
        to_secondary = nic.by_dst(PHY1_ORION_MAC)
        assert len(to_primary) == 1
        assert not is_null_request(to_primary[0].payload.message)
        assert len(to_secondary) == 1
        assert is_null_request(to_secondary[0].payload.message)
        assert to_secondary[0].payload.message.slot == 50

    def test_null_tti_request_kept_null_for_both(self):
        sim = Simulator()
        orion, nic, _ = build_l2_orion(sim)
        orion.receive_fapi(UlTtiRequest(cell_id=0, slot=51, pdus=[]), channel=None)
        sim.run()
        assert is_null_request(nic.by_dst(PHY0_ORION_MAC)[0].payload.message)
        assert is_null_request(nic.by_dst(PHY1_ORION_MAC)[0].payload.message)

    def test_tx_data_goes_only_to_primary(self):
        sim = Simulator()
        orion, nic, _ = build_l2_orion(sim)
        orion.receive_fapi(
            TxDataRequest(cell_id=0, slot=52, payloads=[(1, b"x")]), channel=None
        )
        sim.run()
        assert len(nic.by_dst(PHY0_ORION_MAC)) == 1
        assert len(nic.by_dst(PHY1_ORION_MAC)) == 0

    def test_config_and_start_duplicated_and_stored(self):
        sim = Simulator()
        orion, nic, _ = build_l2_orion(sim)
        config = ConfigRequest(cell_id=0, ru_id=0)
        orion.receive_fapi(config, channel=None)
        orion.receive_fapi(StartRequest(cell_id=0), channel=None)
        sim.run()
        assert len(nic.by_dst(PHY0_ORION_MAC)) == 2
        assert len(nic.by_dst(PHY1_ORION_MAC)) == 2
        assert orion.cells[0].stored_config is config

    def test_unknown_cell_ignored(self):
        sim = Simulator()
        orion, nic, _ = build_l2_orion(sim)
        orion.receive_fapi(UlTtiRequest(cell_id=9, slot=1, pdus=[]), channel=None)
        sim.run()
        assert nic.frames == []


class TestResponseFiltering:
    def _crc(self, slot):
        return CrcIndication(
            cell_id=0, slot=slot,
            results=[CrcResult(1, 0, 5, True, 15.0)],
        )

    def test_primary_responses_forwarded(self):
        sim = Simulator()
        orion, _, l2_sink = build_l2_orion(sim)
        deliver_response(orion, self._crc(10), phy_id=0)
        sim.run()
        assert len(l2_sink.messages) == 1

    def test_secondary_responses_dropped(self):
        sim = Simulator()
        orion, _, l2_sink = build_l2_orion(sim)
        deliver_response(orion, self._crc(10), phy_id=1)
        sim.run()
        assert l2_sink.messages == []
        assert orion.stats.responses_dropped == 1

    def test_slot_indications_not_relayed_to_l2(self):
        sim = Simulator()
        orion, _, l2_sink = build_l2_orion(sim)
        deliver_response(orion, SlotIndication(cell_id=0, slot=3), phy_id=0)
        sim.run()
        assert l2_sink.messages == []


class TestMigrationSteering:
    def test_failure_notification_triggers_migration(self):
        sim = Simulator()
        orion, nic, _ = build_l2_orion(sim)
        orion.receive_frame(
            EthernetFrame(
                src=MacAddress(1), dst=L2_ORION_MAC,
                ethertype=EtherType.SLINGSHOT,
                payload=FailureNotification(phy_id=0, detected_at=sim.now),
                wire_bytes=64,
            ),
            ingress=None,
        )
        sim.run_until(1000)  # Before the drain window finalizes roles.
        assignment = orion.cells[0]
        assert assignment.migration_slot is not None
        assert assignment.migration_dest == 1
        sim.run()
        commands = [f.payload for f in nic.frames if f.ethertype == EtherType.SLINGSHOT]
        kinds = {type(c) for c in commands}
        assert MigrateOnSlot in kinds
        assert SetMonitor in kinds
        migrate = next(c for c in commands if isinstance(c, MigrateOnSlot))
        assert migrate.dest_phy_id == 1

    def test_requests_steered_by_slot_across_boundary(self):
        sim = Simulator()
        orion, nic, _ = build_l2_orion(sim)
        boundary = orion.planned_migration(0)
        sim.run_until(1000)  # Migration pending, not yet finalized.
        nic.frames.clear()
        orion.receive_fapi(tti_with_work(boundary - 1), channel=None)
        orion.receive_fapi(tti_with_work(boundary), channel=None)
        sim.run_until(2000)
        pre = [
            f.payload.message for f in nic.by_dst(PHY0_ORION_MAC)
            if f.payload.message.slot == boundary - 1
        ]
        post = [
            f.payload.message for f in nic.by_dst(PHY1_ORION_MAC)
            if f.payload.message.slot == boundary
        ]
        assert len(pre) == 1 and not is_null_request(pre[0])
        assert len(post) == 1 and not is_null_request(post[0])

    def test_pipelined_draining_accepts_old_primary_pre_boundary(self):
        """Responses from the old primary for slots before the boundary
        are still forwarded during the drain window (Fig 7)."""
        sim = Simulator()
        orion, _, l2_sink = build_l2_orion(sim)
        boundary = orion.planned_migration(0)
        deliver_response(
            orion,
            CrcIndication(cell_id=0, slot=boundary - 1,
                          results=[CrcResult(1, 0, 5, True, 15.0)]),
            phy_id=0,
        )
        sim.run_until(1000)
        assert len(l2_sink.messages) == 1
        assert orion.stats.drained_responses == 1

    def test_old_primary_post_boundary_dropped(self):
        sim = Simulator()
        orion, _, l2_sink = build_l2_orion(sim)
        boundary = orion.planned_migration(0)
        deliver_response(
            orion,
            CrcIndication(cell_id=0, slot=boundary + 1,
                          results=[CrcResult(1, 0, 5, True, 15.0)]),
            phy_id=0,
        )
        sim.run_until(1000)
        assert l2_sink.messages == []

    def test_roles_swap_after_planned_migration(self):
        sim = Simulator()
        orion, _, _ = build_l2_orion(sim)
        orion.planned_migration(0)
        slot_ns = 500_000
        sim.run_until(slot_ns * 40)
        assignment = orion.cells[0]
        assert assignment.primary_phy == 1
        assert assignment.secondary_phy == 0  # Old primary becomes standby.
        assert assignment.migration_slot is None

    def test_failover_leaves_no_secondary_until_initialized(self):
        sim = Simulator()
        orion, _, _ = build_l2_orion(sim)
        orion.receive_frame(
            EthernetFrame(
                src=MacAddress(1), dst=L2_ORION_MAC,
                ethertype=EtherType.SLINGSHOT,
                payload=FailureNotification(phy_id=0, detected_at=sim.now),
                wire_bytes=64,
            ),
            ingress=None,
        )
        sim.run_until(500_000 * 40)
        assignment = orion.cells[0]
        assert assignment.primary_phy == 1
        assert assignment.secondary_phy is None

    def test_initialize_secondary_replays_stored_config(self):
        sim = Simulator()
        orion, nic, _ = build_l2_orion(sim)
        orion.receive_fapi(ConfigRequest(cell_id=0, ru_id=0), channel=None)
        sim.run()
        nic.frames.clear()
        orion.initialize_secondary(0, 1)
        sim.run()
        to_new = nic.by_dst(PHY1_ORION_MAC)
        assert any(isinstance(f.payload.message, ConfigRequest) for f in to_new)
        assert any(isinstance(f.payload.message, StartRequest) for f in to_new)

    def test_duplicate_failure_notifications_ignored_mid_migration(self):
        sim = Simulator()
        orion, _, _ = build_l2_orion(sim)
        frame = EthernetFrame(
            src=MacAddress(1), dst=L2_ORION_MAC,
            ethertype=EtherType.SLINGSHOT,
            payload=FailureNotification(phy_id=0, detected_at=sim.now),
            wire_bytes=64,
        )
        orion.receive_frame(frame, ingress=None)
        orion.receive_frame(frame, ingress=None)
        sim.run_until(1000)
        assert orion.stats.migrations_initiated == 1


class TestPhySideOrion:
    def test_relays_network_to_shm(self):
        sim = Simulator()
        orion = PhySideOrion(
            sim, phy_id=0, mac=PHY0_ORION_MAC,
            config=OrionConfig(service_base_ns=0, service_per_byte_ns=0.0),
        )
        phy_sink = MessageSink()
        orion.shm_to_phy = ShmChannel(sim, phy_sink, latency_ns=0)
        message = UlTtiRequest(cell_id=0, slot=5, pdus=[])
        orion.receive_frame(
            EthernetFrame(
                src=L2_ORION_MAC, dst=PHY0_ORION_MAC, ethertype=EtherType.IPV4,
                payload=OrionDatagram(message=message, phy_id=0, is_response=False),
                wire_bytes=100,
            ),
            ingress=None,
        )
        sim.run()
        assert phy_sink.messages == [message]

    def test_relays_shm_to_network(self):
        sim = Simulator()
        orion = PhySideOrion(
            sim, phy_id=0, mac=PHY0_ORION_MAC,
            config=OrionConfig(service_base_ns=0, service_per_byte_ns=0.0),
        )
        nic = FrameSink(sim)
        orion.uplink = Link(sim, nic, bandwidth_bps=0, latency_ns=0)
        orion.l2_orion_mac = L2_ORION_MAC
        orion.receive_fapi(SlotIndication(cell_id=0, slot=2), channel=None)
        sim.run()
        assert len(nic.frames) == 1
        assert nic.frames[0].dst == L2_ORION_MAC
        assert nic.frames[0].payload.phy_id == 0

    def test_service_queue_adds_latency_under_load(self):
        sim = Simulator()
        config = OrionConfig(service_base_ns=1000, service_per_byte_ns=0.0)
        orion = PhySideOrion(sim, phy_id=0, mac=PHY0_ORION_MAC, config=config)
        sink = MessageSink()
        arrival_times = []

        class TimedSink:
            def receive_fapi(self, message, channel):
                arrival_times.append(sim.now)

        orion.shm_to_phy = ShmChannel(sim, TimedSink(), latency_ns=0)
        for _ in range(5):
            orion.receive_frame(
                EthernetFrame(
                    src=L2_ORION_MAC, dst=PHY0_ORION_MAC, ethertype=EtherType.IPV4,
                    payload=OrionDatagram(
                        message=SlotIndication(cell_id=0, slot=1),
                        phy_id=0, is_response=False,
                    ),
                    wire_bytes=100,
                ),
                ingress=None,
            )
        sim.run()
        # FIFO: each message waits for the previous one's service.
        assert arrival_times == [1000, 2000, 3000, 4000, 5000]
