"""Tests for LDPC construction, encoding, and BP decoding."""

import numpy as np
import pytest

from repro.phy.channel import AwgnChannel, ChannelRealization
from repro.phy.ldpc import LdpcCode, get_code
from repro.phy.modulation import Modulation, demodulate_llr, modulate


@pytest.fixture(scope="module")
def code():
    return get_code()


class TestConstruction:
    def test_default_dimensions(self, code):
        assert code.n == 648
        assert code.k == 324
        assert code.rate == pytest.approx(0.5)

    def test_every_codeword_satisfies_parity(self, code):
        rng = np.random.default_rng(0)
        for _ in range(5):
            info = rng.integers(0, 2, code.k, dtype=np.uint8)
            assert code.syndrome_ok(code.encode(info))

    def test_encoding_is_systematic(self, code):
        rng = np.random.default_rng(1)
        info = rng.integers(0, 2, code.k, dtype=np.uint8)
        codeword = code.encode(info)
        assert np.array_equal(code.extract_info(codeword), info)

    def test_encoding_is_linear(self, code):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 2, code.k, dtype=np.uint8)
        b = rng.integers(0, 2, code.k, dtype=np.uint8)
        summed = code.encode((a + b) % 2)
        assert np.array_equal(summed, (code.encode(a) + code.encode(b)) % 2)

    def test_same_seed_same_code(self):
        a = LdpcCode(n=96, dv=3, dc=6, seed=11)
        b = LdpcCode(n=96, dv=3, dc=6, seed=11)
        assert np.array_equal(a.chk_to_var, b.chk_to_var)

    def test_wrong_info_length_rejected(self, code):
        with pytest.raises(ValueError):
            code.encode(np.zeros(code.k + 1, dtype=np.uint8))

    def test_incompatible_degrees_rejected(self):
        with pytest.raises(ValueError):
            LdpcCode(n=100, dv=3, dc=7)

    def test_cache_returns_same_instance(self):
        assert get_code() is get_code()


class TestDecoding:
    def test_noiseless_decodes_in_zero_iterations(self, code):
        rng = np.random.default_rng(3)
        info = rng.integers(0, 2, code.k, dtype=np.uint8)
        codeword = code.encode(info)
        llr = (1.0 - 2.0 * codeword.astype(np.float64)) * 10.0
        result = code.decode(llr)
        assert result.parity_ok
        assert result.iterations_used == 0
        assert np.array_equal(result.info_bits, info)

    def test_high_snr_decodes_correctly(self, code):
        rng = np.random.default_rng(4)
        channel = AwgnChannel(rng)
        info = rng.integers(0, 2, code.k, dtype=np.uint8)
        symbols = modulate(code.encode(info), Modulation.QPSK)
        realization = ChannelRealization(snr_db=8.0)
        received = channel.apply(symbols, realization)
        llr = demodulate_llr(received, Modulation.QPSK, realization.noise_var)
        result = code.decode(llr, max_iterations=10)
        assert result.parity_ok
        assert np.array_equal(result.info_bits, info)

    def test_hopeless_snr_fails_parity(self, code):
        rng = np.random.default_rng(5)
        channel = AwgnChannel(rng)
        info = rng.integers(0, 2, code.k, dtype=np.uint8)
        symbols = modulate(code.encode(info), Modulation.QAM64)
        realization = ChannelRealization(snr_db=-3.0)
        received = channel.apply(symbols, realization)
        llr = demodulate_llr(received, Modulation.QAM64, realization.noise_var)[: code.n]
        result = code.decode(llr, max_iterations=6)
        assert not result.parity_ok

    def test_more_iterations_lower_bler_near_threshold(self, code):
        """The Fig 11 upgrade lever: iteration budget moves the BLER."""
        rng = np.random.default_rng(6)
        channel = AwgnChannel(rng)

        def bler(iterations, trials=30):
            failures = 0
            for _ in range(trials):
                info = rng.integers(0, 2, code.k, dtype=np.uint8)
                symbols = modulate(code.encode(info), Modulation.QAM16)
                realization = ChannelRealization(snr_db=10.0)
                received = channel.apply(symbols, realization)
                llr = demodulate_llr(
                    received, Modulation.QAM16, realization.noise_var
                )[: code.n]
                result = code.decode(llr, max_iterations=iterations)
                if not (
                    result.parity_ok and np.array_equal(result.info_bits, info)
                ):
                    failures += 1
            return failures / trials

        assert bler(1) > bler(12) + 0.2

    def test_wrong_llr_length_rejected(self, code):
        with pytest.raises(ValueError):
            code.decode(np.zeros(code.n - 1))

    def test_chase_combining_gain(self, code):
        """Summing LLRs of two transmissions decodes where one fails.

        This is the physical basis of HARQ soft combining (§4.2).
        """
        rng = np.random.default_rng(7)
        channel = AwgnChannel(rng)
        snr = ChannelRealization(snr_db=7.0)  # Below 16-QAM threshold.
        single_success = 0
        combined_success = 0
        trials = 25
        for _ in range(trials):
            info = rng.integers(0, 2, code.k, dtype=np.uint8)
            symbols = modulate(code.encode(info), Modulation.QAM16)
            llr1 = demodulate_llr(
                channel.apply(symbols, snr), Modulation.QAM16, snr.noise_var
            )[: code.n]
            llr2 = demodulate_llr(
                channel.apply(symbols, snr), Modulation.QAM16, snr.noise_var
            )[: code.n]
            r1 = code.decode(llr1, max_iterations=8)
            if r1.parity_ok and np.array_equal(r1.info_bits, info):
                single_success += 1
            r2 = code.decode(llr1 + llr2, max_iterations=8)
            if r2.parity_ok and np.array_equal(r2.info_bits, info):
                combined_success += 1
        assert combined_success > single_success
