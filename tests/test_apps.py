"""Tests for the application layer: ping, iperf, video — over a live cell."""

import numpy as np
import pytest

from repro.apps.iperf import TcpIperfUplink, UdpIperfDownlink, UdpIperfUplink
from repro.apps.ping import PingClient, UePingResponder
from repro.apps.video import VideoReceiver, VideoSender
from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.sim.units import MS, SECOND, s_to_ns
from repro.transport.packet import Packet


@pytest.fixture(scope="module")
def cell():
    """A shared steady cell for the application tests."""
    return build_slingshot_cell(
        CellConfig(seed=21, ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=17.0)])
    )


class TestPing:
    def test_round_trip_and_latency_scale(self):
        local = build_slingshot_cell(
            CellConfig(seed=22, ue_profiles=[UeProfile(1, "UE", 17.0)])
        )
        ue = local.ue(1)
        responder = UePingResponder(ue, "ping", bearer_id=1)
        ue.dl_sink = lambda bearer, sdu: (
            responder.on_packet(sdu) if isinstance(sdu, Packet) else None
        )
        client = PingClient(local.sim, local.server, 1, "ping", bearer_id=1)
        local.run_for(s_to_ns(0.2))
        client.start()
        local.run_for(s_to_ns(0.8))
        rtts = [rtt for _, rtt in client.rtt_series_ms()]
        assert len(rtts) > 50
        median = float(np.median(rtts))
        # Cellular-scale RTT: tens of ms (paper's §8.7 median: 22.8 ms).
        assert 15.0 < median < 60.0
        assert client.loss_count() == 0


class TestUdpIperf:
    def test_uplink_throughput_matches_offered_load(self):
        local = build_slingshot_cell(
            CellConfig(seed=23, ue_profiles=[UeProfile(1, "UE", 17.0)])
        )
        flow = UdpIperfUplink(
            local.sim, local.server, local.ue(1), "ul", 1, bitrate_bps=12e6
        )
        local.run_for(s_to_ns(0.2))
        flow.start()
        local.run_for(s_to_ns(0.8))
        received_mbps = (
            flow.sink.stats.bytes_received * 8 / 0.8 / 1e6
        )
        assert received_mbps == pytest.approx(12.0, rel=0.15)
        assert flow.sink.stats.loss_rate < 0.02

    def test_downlink_throughput(self):
        local = build_slingshot_cell(
            CellConfig(seed=24, ue_profiles=[UeProfile(1, "UE", 17.0)])
        )
        flow = UdpIperfDownlink(
            local.sim, local.server, local.ue(1), "dl", 1, bitrate_bps=40e6
        )
        local.run_for(s_to_ns(0.2))
        flow.start()
        local.run_for(s_to_ns(0.8))
        received_mbps = flow.sink.stats.bytes_received * 8 / 0.8 / 1e6
        assert received_mbps == pytest.approx(40.0, rel=0.15)

    def test_throughput_series_bins(self):
        local = build_slingshot_cell(
            CellConfig(seed=25, ue_profiles=[UeProfile(1, "UE", 17.0)])
        )
        flow = UdpIperfUplink(
            local.sim, local.server, local.ue(1), "ul", 1, bitrate_bps=8e6
        )
        local.run_for(s_to_ns(0.2))
        flow.start()
        local.run_for(s_to_ns(0.5))
        series = flow.sink.throughput_series(s_to_ns(0.4), s_to_ns(0.7))
        assert len(series) == 30  # 10 ms bins over 300 ms.
        mean = sum(m for _, m in series) / len(series)
        assert mean == pytest.approx(8.0, rel=0.3)


class TestTcpIperf:
    def test_uplink_tcp_saturates_radio(self):
        local = build_slingshot_cell(
            CellConfig(seed=26, ue_profiles=[UeProfile(1, "UE", 17.0)])
        )
        flow = TcpIperfUplink(local.sim, local.server, local.ue(1), "tcp", 1)
        local.run_for(s_to_ns(0.2))
        flow.start()
        local.run_for(s_to_ns(1.3))
        # Steady-state goodput in the last 300 ms approaches the UL
        # capacity (~46 Mb/s at 64-QAM over the full carrier).
        series = flow.receiver.throughput_series(s_to_ns(1.2), s_to_ns(1.5))
        mean = sum(m for _, m in series) / len(series)
        assert mean > 30.0


class TestVideo:
    def test_bitrate_meter_tracks_target(self):
        local = build_slingshot_cell(
            CellConfig(seed=27, ue_profiles=[UeProfile(1, "UE", 17.0)])
        )
        ue = local.ue(1)
        sender = VideoSender(
            local.sim, local.server, 1, "video", 1,
            bitrate_bps=500_000.0, rng=np.random.default_rng(0),
        )
        receiver = VideoReceiver(local.sim, ue, "video")
        local.run_for(s_to_ns(0.2))
        sender.start()
        local.run_for(s_to_ns(2.0))
        series = receiver.bitrate_series_kbps(s_to_ns(0.5), s_to_ns(2.2))
        mean = sum(k for _, k in series) / len(series)
        assert mean == pytest.approx(500.0, rel=0.2)
        assert receiver.outage_seconds(s_to_ns(0.5), s_to_ns(2.2)) == 0.0

    def test_sender_paces_frames(self):
        local = build_slingshot_cell(
            CellConfig(seed=28, ue_profiles=[UeProfile(1, "UE", 17.0)])
        )
        sender = VideoSender(
            local.sim, local.server, 1, "v", 1, fps=30.0,
            rng=np.random.default_rng(0),
        )
        sender.start()
        local.run_for(s_to_ns(1.0))
        assert sender.frames_sent == pytest.approx(30, abs=2)
