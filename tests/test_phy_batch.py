"""Fuzz pins for the batched PHY kernels.

Every kernel in :mod:`repro.phy.batch` must be **bit-identical** to a
loop over its per-block reference — not approximately equal: the batch
path drives the live uplink slot pipeline, so a single differing float
would shift golden trace digests. All fuzz corpora come from reserved
``perf.*`` RngRegistry streams (seed ``CORPUS_SEED``) so they never
collide with simulation streams.
"""

import numpy as np
import pytest

from repro.perf.benchmarks import CORPUS_SEED
from repro.phy.batch import (
    demodulate_llr_batch,
    ldpc_encode_batch,
    ldpc_syndrome_ok_batch,
    modulate_batch,
)
from repro.phy.codec import PhyCodec
from repro.phy.ldpc import get_code
from repro.phy.modulation import Modulation, demodulate_llr, modulate
from repro.phy.transport import LinkDirection, TransportBlock
from repro.sim.rng import RngRegistry

MODULATIONS = list(Modulation)


def _random_bit_blocks(rng, count, modulations):
    """Per-block bit arrays whose lengths are symbol-aligned."""
    blocks = []
    for modulation in modulations:
        symbols = int(rng.integers(1, 64))
        size = symbols * modulation.bits_per_symbol
        blocks.append(rng.integers(0, 2, size=size, dtype=np.uint8))
    return blocks


class TestModulationBatch:
    def test_modulate_batch_pins_to_per_block_reference(self):
        rng = RngRegistry(CORPUS_SEED).stream("perf.batch_fuzz")
        for _ in range(60):
            count = int(rng.integers(1, 12))
            modulations = [
                MODULATIONS[int(rng.integers(0, len(MODULATIONS)))]
                for _ in range(count)
            ]
            bit_blocks = _random_bit_blocks(rng, count, modulations)
            batch = modulate_batch(bit_blocks, modulations)
            for bits, modulation, symbols in zip(bit_blocks, modulations, batch):
                reference = modulate(bits, modulation)
                assert symbols.dtype == reference.dtype
                assert np.array_equal(symbols, reference)

    def test_demodulate_llr_batch_pins_to_per_block_reference(self):
        rng = RngRegistry(CORPUS_SEED).stream("perf.batch_fuzz.demod")
        for _ in range(60):
            count = int(rng.integers(1, 12))
            modulations = [
                MODULATIONS[int(rng.integers(0, len(MODULATIONS)))]
                for _ in range(count)
            ]
            bit_blocks = _random_bit_blocks(rng, count, modulations)
            symbol_blocks = [
                modulate(bits, modulation) + (
                    rng.normal(0, 0.3, size=len(bits) // modulation.bits_per_symbol)
                    + 1j * rng.normal(0, 0.3, size=len(bits) // modulation.bits_per_symbol)
                )
                for bits, modulation in zip(bit_blocks, modulations)
            ]
            noise_vars = [float(v) for v in rng.uniform(0.01, 2.0, size=count)]
            batch = demodulate_llr_batch(symbol_blocks, modulations, noise_vars)
            for symbols, modulation, noise_var, llrs in zip(
                symbol_blocks, modulations, noise_vars, batch
            ):
                reference = demodulate_llr(symbols, modulation, noise_var)
                assert llrs.dtype == reference.dtype
                assert np.array_equal(llrs, reference)

    def test_length_mismatches_rejected(self):
        with pytest.raises(ValueError):
            modulate_batch([np.zeros(2, dtype=np.uint8)], [])
        with pytest.raises(ValueError):
            demodulate_llr_batch([np.zeros(2, dtype=complex)], [Modulation.QPSK], [])


class TestLdpcBatch:
    def test_encode_batch_pins_to_per_block_reference(self):
        code = get_code()
        rng = RngRegistry(CORPUS_SEED).stream("perf.batch_fuzz.ldpc")
        for _ in range(20):
            count = int(rng.integers(1, 10))
            info_blocks = [
                rng.integers(0, 2, size=code.k, dtype=np.uint8)
                for _ in range(count)
            ]
            batch = ldpc_encode_batch(code, info_blocks)
            assert batch.shape == (count, code.n)
            assert batch.dtype == np.uint8
            for row, info in zip(batch, info_blocks):
                assert np.array_equal(row, code.encode(info))

    def test_syndrome_ok_batch_pins_to_per_block_reference(self):
        code = get_code()
        rng = RngRegistry(CORPUS_SEED).stream("perf.batch_fuzz.syndrome")
        info_blocks = [
            rng.integers(0, 2, size=code.k, dtype=np.uint8) for _ in range(12)
        ]
        hard = ldpc_encode_batch(code, info_blocks)
        # Corrupt a random bit in half the rows so both verdicts appear.
        for row in range(0, len(hard), 2):
            hard[row, int(rng.integers(0, code.n))] ^= 1
        verdicts = ldpc_syndrome_ok_batch(code, hard)
        assert verdicts.dtype == np.bool_
        for row, verdict in zip(hard, verdicts):
            assert bool(verdict) == code.syndrome_ok(row)
        # Clean codewords all pass; at least one corrupted row fails.
        assert not verdicts[::2].all()
        assert verdicts[1::2].all()

    def test_wrong_info_width_rejected(self):
        code = get_code()
        with pytest.raises(ValueError, match="info bits"):
            ldpc_encode_batch(code, [np.zeros(code.k + 1, dtype=np.uint8)])


def _slot_blocks(count=12):
    rng = RngRegistry(CORPUS_SEED).stream("perf.batch_fuzz.codec")
    return [
        TransportBlock(
            ue_id=1 + (i % 8),
            direction=LinkDirection.UPLINK,
            harq_process=i % 16,
            modulation=MODULATIONS[int(rng.integers(0, len(MODULATIONS)))],
            prbs=int(rng.integers(1, 273)),
            data=None,
            size_bytes=int(rng.integers(32, 4096)),
            new_data=True,
            retx_index=0,
            slot=0,
            tb_id=7000 + i,
        )
        for i in range(count)
    ]


class TestCodecBatch:
    def test_encode_blocks_pins_to_encode_block(self):
        codec = PhyCodec(rng=np.random.default_rng(3))
        blocks = _slot_blocks()
        batch = codec.encode_blocks(blocks)
        assert len(batch) == len(blocks)
        for block, symbols in zip(blocks, batch):
            reference = codec.encode_block(block)
            assert symbols.dtype == reference.dtype
            assert np.array_equal(symbols, reference)

    def test_encode_blocks_empty(self):
        codec = PhyCodec(rng=np.random.default_rng(3))
        assert codec.encode_blocks([]) == []

    def test_decode_block_accepts_precomputed_symbols(self):
        """Supplying encode_blocks output must not change the decode
        outcome or the RNG draw order (encoding is RNG-free)."""
        from repro.phy.channel import ChannelRealization

        blocks = _slot_blocks(count=4)
        codec_a = PhyCodec(rng=np.random.default_rng(11))
        codec_b = PhyCodec(rng=np.random.default_rng(11))
        encoded = codec_b.encode_blocks(blocks)
        for i, (block, symbols) in enumerate(zip(blocks, encoded)):
            realization = ChannelRealization(snr_db=9.0 + i)
            outcome_a = codec_a.decode_block(block, realization)
            outcome_b = codec_b.decode_block(block, realization, symbols=symbols)
            assert outcome_a == outcome_b
