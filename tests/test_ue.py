"""Tests for the UE model: grants, feedback, RLF machinery."""

import numpy as np
import pytest

from repro.fronthaul.air import AirInterface
from repro.fronthaul.oran import UlGrant
from repro.l2.rlc import RlcBearerConfig, RlcMode
from repro.phy.channel import UeChannelModel
from repro.phy.modulation import Modulation
from repro.phy.numerology import Numerology, SlotClock, TddPattern
from repro.phy.transport import LinkDirection, TransportBlock
from repro.sim.engine import Simulator
from repro.sim.units import MS, US
from repro.ue.ue import UeConfig, UserEquipment


def build_ue(sim, rlf_ms=50):
    air = AirInterface()
    ue = UserEquipment(
        sim=sim,
        ue_id=1,
        slot_clock=SlotClock(Numerology()),
        tdd=TddPattern(),
        air=air,
        channel=UeChannelModel(np.random.default_rng(0), mean_snr_db=18.0),
        rng=np.random.default_rng(1),
        bearers=[
            RlcBearerConfig(bearer_id=1, mode=RlcMode.UM),
            RlcBearerConfig(bearer_id=2, mode=RlcMode.AM),
        ],
        config=UeConfig(rlf_timeout_ns=rlf_ms * MS),
    )
    return ue, air


def grant(tb_id=100, new_data=True, tb_bytes=2000):
    return UlGrant(
        ue_id=1, harq_process=0, modulation=Modulation.QAM16,
        prbs=50, new_data=new_data, tb_id=tb_id, tb_bytes=tb_bytes,
    )


class TestGrantHandling:
    def test_grant_triggers_transmission_with_queued_data(self):
        sim = Simulator()
        ue, air = build_ue(sim)
        ue.send_uplink(1, "app-packet", 500)
        air.broadcast_dl_control(10, [grant()], vran_instance_id=1)
        transmission = ue.port.collect_uplink(10)
        assert transmission is not None
        assert transmission.block.tb_id == 100
        sdus = [p.sdu for p in transmission.block.data if hasattr(p, "sdu")]
        assert "app-packet" in sdus

    def test_grant_for_other_ue_ignored(self):
        sim = Simulator()
        ue, air = build_ue(sim)
        other = UlGrant(
            ue_id=2, harq_process=0, modulation=Modulation.QPSK,
            prbs=10, new_data=True, tb_id=7, tb_bytes=100,
        )
        air.broadcast_dl_control(10, [other], vran_instance_id=1)
        assert ue.port.collect_uplink(10) is None

    def test_retransmission_grant_resends_same_block(self):
        sim = Simulator()
        ue, air = build_ue(sim)
        ue.send_uplink(1, "data", 500)
        air.broadcast_dl_control(10, [grant(tb_id=55)], vran_instance_id=1)
        original = ue.port.collect_uplink(10).block
        air.broadcast_dl_control(
            15, [grant(tb_id=55, new_data=False)], vran_instance_id=1
        )
        retx = ue.port.collect_uplink(15).block
        assert retx.tb_id == original.tb_id
        assert retx.retx_index == 1
        assert retx.data is original.data

    def test_retransmission_grant_without_original_sends_padding(self):
        """A retx grant whose original was never built (grant lost in the
        failover blackout) still produces a transmission."""
        sim = Simulator()
        ue, air = build_ue(sim)
        air.broadcast_dl_control(
            10, [grant(tb_id=77, new_data=False)], vran_instance_id=1
        )
        transmission = ue.port.collect_uplink(10)
        assert transmission is not None
        assert transmission.block.tb_id == 77

    def test_bsr_reports_backlog(self):
        sim = Simulator()
        ue, air = build_ue(sim)
        ue.send_uplink(1, "a", 5_000)
        ue.send_uplink(1, "b", 5_000)
        air.broadcast_dl_control(10, [grant(tb_bytes=2_000)], vran_instance_id=1)
        transmission = ue.port.collect_uplink(10)
        assert transmission.bsr_bytes > 0

    def test_detached_ue_ignores_grants(self):
        sim = Simulator()
        ue, air = build_ue(sim)
        ue.attached = False
        ue.port.attached = False
        air.broadcast_dl_control(10, [grant()], vran_instance_id=1)
        assert ue.port.collect_uplink(10) is None


class TestDownlinkDecode:
    def test_dl_block_decoded_and_feedback_queued(self):
        sim = Simulator()
        ue, air = build_ue(sim)
        block = TransportBlock(
            ue_id=1, direction=LinkDirection.DOWNLINK, harq_process=2,
            modulation=Modulation.QPSK, prbs=50, data=[], size_bytes=10,
        )
        air.deliver_dl_data(10, block)
        assert ue.stats.dl_tbs_received == 1
        assert ue.stats.dl_crc_ok == 1
        assert ue._pending_feedback[0][3] is True  # ACK queued.

    def test_delivered_sdus_reach_dl_sink(self):
        sim = Simulator()
        ue, air = build_ue(sim)
        received = []
        ue.dl_sink = lambda bearer, sdu: received.append((bearer, sdu))
        from repro.l2.rlc import RlcTransmitter

        tx = RlcTransmitter(RlcBearerConfig(bearer_id=1, mode=RlcMode.UM))
        tx.enqueue("hello", 50)
        pdus = tx.pull(1000)
        block = TransportBlock(
            ue_id=1, direction=LinkDirection.DOWNLINK, harq_process=0,
            modulation=Modulation.QPSK, prbs=50, data=pdus, size_bytes=55,
        )
        air.deliver_dl_data(10, block)
        assert received == [(1, "hello")]


class TestRlf:
    def test_rlf_fires_after_silence(self):
        sim = Simulator()
        ue, air = build_ue(sim, rlf_ms=50)
        fired = []
        ue.on_rlf = fired.append
        sim.run_until(40 * MS)
        assert ue.attached
        sim.run_until(80 * MS)
        assert not ue.attached
        assert fired == [ue]
        assert ue.stats.rlf_events == 1

    def test_control_resets_rlf_timer(self):
        sim = Simulator()
        ue, air = build_ue(sim, rlf_ms=50)
        # Feed control every 10 ms: no RLF ever.
        def feed():
            air.broadcast_dl_control(
                SlotClock(Numerology()).slot_at(sim.now), [], vran_instance_id=1
            )
            sim.schedule(10 * MS, feed)

        sim.schedule(0, feed)
        sim.run_until(400 * MS)
        assert ue.attached
        assert ue.stats.rlf_events == 0

    def test_instance_change_causes_out_of_sync_then_rlf(self):
        """A different vRAN stack taking over (baseline failover) makes
        the UE lose its context: RLF despite continuing control."""
        sim = Simulator()
        ue, air = build_ue(sim, rlf_ms=50)

        def feed(instance):
            air.broadcast_dl_control(
                SlotClock(Numerology()).slot_at(sim.now), [],
                vran_instance_id=instance,
            )

        feed(1)
        sim.run_until(10 * MS)
        for offset in range(1, 30):
            sim.schedule(0, feed, 2)  # Backup stack's identity.
            sim.run_until((10 + offset * 5) * MS)
        assert not ue.attached
        assert ue.stats.rlf_events == 1

    def test_reattach_restores_service(self):
        sim = Simulator()
        ue, air = build_ue(sim, rlf_ms=50)
        sim.run_until(120 * MS)
        assert not ue.attached
        ue.complete_reattach()
        assert ue.attached
        assert ue.port.attached
        assert ue.stats.reattach_completions == 1
        # New instance id accepted after re-establishment.
        air.broadcast_dl_control(400, [grant()], vran_instance_id=2)
        sim.run_until(121 * MS)
        assert ue.attached

    def test_rlf_discards_radio_state(self):
        sim = Simulator()
        ue, air = build_ue(sim, rlf_ms=50)
        ue.send_uplink(1, "queued", 100)
        air.broadcast_dl_control(10, [grant(tb_id=9)], vran_instance_id=1)
        sim.run_until(120 * MS)  # RLF fires.
        assert ue.uplink_backlog_bytes == 0
        assert ue._sent_blocks == {}

    def test_send_uplink_rejected_when_detached(self):
        sim = Simulator()
        ue, air = build_ue(sim, rlf_ms=50)
        sim.run_until(120 * MS)
        assert not ue.send_uplink(1, "x", 10)


class TestControlOnlyTransmissions:
    def test_pucch_carries_feedback_without_grant(self):
        sim = Simulator()
        ue, air = build_ue(sim)
        block = TransportBlock(
            ue_id=1, direction=LinkDirection.DOWNLINK, harq_process=0,
            modulation=Modulation.QPSK, prbs=50, data=[], size_bytes=10,
        )
        # Keep the UE in sync, deliver DL data, then let a U slot pass.
        air.broadcast_dl_control(0, [], vran_instance_id=1)
        air.deliver_dl_data(0, block)
        sim.run_until(4 * MS)  # Covers slot 4 (U) tick.
        captured = air.collect_uplink(4)
        assert captured
        assert captured[0].dl_feedback
        assert ue.stats.control_only_transmissions >= 1
