"""Per-rule slinglint fixtures: each rule fires on a minimal violation
and is silenced by its suppression comment."""

import pytest

from repro.analysis import Severity, all_rules, lint_source
from repro.analysis.p4budget import (
    MAX_REGISTER_ACCESSES_PER_PASS,
    summarize_program,
)
from repro.analysis.registry import LintContext, parse_suppressions

import ast


def rule_ids(findings):
    return [f.rule_id for f in findings]


def lint(source, path="src/repro/somewhere/mod.py", **kwargs):
    return lint_source(source, path=path, **kwargs)


class TestDeterminismRules:
    def test_det001_wall_clock(self):
        findings = lint("import time\nstart = time.time()\n")
        assert "DET001" in rule_ids(findings)

    def test_det001_datetime_now(self):
        findings = lint("import datetime\nt = datetime.datetime.now()\n")
        assert "DET001" in rule_ids(findings)

    def test_det001_suppressed(self):
        findings = lint(
            "import time\nstart = time.time()  # slinglint: disable=DET001\n"
        )
        assert "DET001" not in rule_ids(findings)

    def test_det002_stdlib_random_import(self):
        assert "DET002" in rule_ids(lint("import random\n"))
        assert "DET002" in rule_ids(lint("from random import choice\n"))

    def test_det002_suppressed_file_wide(self):
        findings = lint(
            "# slinglint: disable-file=DET002\nimport random\n"
        )
        assert "DET002" not in rule_ids(findings)

    def test_det003_unseeded_and_constant_seeded(self):
        assert "DET003" in rule_ids(
            lint("import numpy as np\nrng = np.random.default_rng()\n")
        )
        assert "DET003" in rule_ids(
            lint("import numpy as np\nrng = np.random.default_rng(0)\n")
        )

    def test_det003_variable_seed_allowed(self):
        findings = lint(
            "import numpy as np\n"
            "def make(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert "DET003" not in rule_ids(findings)

    def test_det003_exempt_in_rng_module(self):
        findings = lint(
            "import numpy as np\nrng = np.random.default_rng(0)\n",
            path="src/repro/sim/rng.py",
        )
        assert "DET003" not in rule_ids(findings)

    def test_det004_numpy_global_rng(self):
        findings = lint("import numpy as np\nx = np.random.uniform(0, 1)\n")
        assert "DET004" in rule_ids(findings)

    def test_det004_generator_method_allowed(self):
        findings = lint("def f(rng):\n    return rng.uniform(0, 1)\n")
        assert "DET004" not in rule_ids(findings)


class TestStreamRules:
    """STREAM001-004 replace the old per-file DET005 namespace check."""

    def test_stream_namespaced_draw_in_owner_allowed(self):
        findings = lint(
            'def f(rng):\n    return rng.stream("faults.link.fh")\n',
            path="src/repro/faults/injector.py",
        )
        assert not [r for r in rule_ids(findings) if r.startswith("STREAM")]

    def test_stream_fstring_prefix_allowed(self):
        findings = lint(
            "def f(rng, link):\n"
            '    return rng.stream(f"faults.link.{link.name}")\n',
            path="src/repro/faults/injector.py",
        )
        assert not [r for r in rule_ids(findings) if r.startswith("STREAM")]

    def test_stream001_dynamic_name_flagged(self):
        """A fully dynamic stream name can't be assigned an owner."""
        findings = lint(
            "def f(rng, name):\n    return rng.stream(name)\n",
            path="src/repro/faults/link_faults.py",
        )
        assert "STREAM001" in rule_ids(findings)

    def test_stream001_fstring_without_static_prefix_flagged(self):
        findings = lint(
            "def f(rng, name):\n"
            '    return rng.stream(f"{name}.jitter")\n',
            path="src/repro/faults/injector.py",
        )
        assert "STREAM001" in rule_ids(findings)

    def test_stream002_undeclared_namespace_flagged_anywhere(self):
        """Unlike DET005, the ownership table binds every subsystem."""
        for path in (
            "src/repro/faults/injector.py",
            "src/repro/phy/channel.py",
        ):
            findings = lint(
                'def f(rng):\n    return rng.stream("channel.snr")\n',
                path=path,
            )
            assert "STREAM002" in rule_ids(findings), path

    def test_stream003_strict_namespace_owner_only(self):
        # cell is a composition root, but faults.* is strict: only
        # faults/ itself may draw fault-plan streams.
        findings = lint(
            'def f(rng):\n    return rng.stream("faults.link.fh")\n',
            path="src/repro/cell/deployment.py",
        )
        assert "STREAM003" in rule_ids(findings)

    def test_stream003_composition_root_may_wire_non_strict(self):
        findings = lint(
            'def f(rng):\n    return rng.stream("ue1.channel")\n',
            path="src/repro/cell/deployment.py",
        )
        assert "STREAM003" not in rule_ids(findings)

    def test_stream003_foreign_subsystem_draw_flagged(self):
        findings = lint(
            'def f(rng):\n    return rng.stream("ue1.channel")\n',
            path="src/repro/apps/video.py",
        )
        assert "STREAM003" in rule_ids(findings)

    def test_stream_suppressed(self):
        findings = lint(
            "def f(rng, name):\n"
            "    return rng.stream(name)  # slinglint: disable=STREAM001\n",
            path="src/repro/faults/injector.py",
        )
        assert "STREAM001" not in rule_ids(findings)


class TestTimeUnitRules:
    def test_tim001_float_literal_delay(self):
        findings = lint("def f(sim):\n    sim.schedule(1.5, print)\n")
        assert "TIM001" in rule_ids(findings)

    def test_tim001_float_inside_expression(self):
        findings = lint("def f(sim, n):\n    sim.at(n * 0.5, print)\n")
        assert "TIM001" in rule_ids(findings)

    def test_tim001_converted_float_allowed(self):
        findings = lint(
            "from repro.sim.units import s_to_ns\n"
            "def f(sim):\n"
            "    sim.schedule(s_to_ns(1.5), print)\n"
        )
        assert "TIM001" not in rule_ids(findings)

    def test_tim001_suppressed(self):
        findings = lint(
            "def f(sim):\n"
            "    sim.schedule(1.5, print)  # slinglint: disable=TIM001\n"
        )
        assert "TIM001" not in rule_ids(findings)

    def test_tim002_magic_duration(self):
        findings = lint("def f(sim):\n    sim.schedule(500_000, print)\n")
        assert "TIM002" in rule_ids(findings)

    def test_tim002_small_offsets_allowed(self):
        findings = lint("def f(sim):\n    sim.schedule(100, print)\n")
        assert "TIM002" not in rule_ids(findings)

    def test_tim002_units_expression_allowed(self):
        findings = lint(
            "from repro.sim.units import US\n"
            "def f(sim):\n"
            "    sim.schedule(500 * US, print)\n"
        )
        assert "TIM002" not in rule_ids(findings)

    def test_tim003_seconds_identifier_into_scheduler(self):
        findings = lint(
            "def f(sim, duration_s):\n"
            "    sim.run_for(duration_s)\n"
        )
        assert "TIM003" in rule_ids(findings)

    def test_tim003_seconds_attribute_into_boundary_helper(self):
        findings = lint(
            "from repro.sim.units import run_for_ns\n"
            "def f(cell, config):\n"
            "    run_for_ns(cell, config.gap_seconds)\n"
        )
        assert "TIM003" in rule_ids(findings)

    def test_tim003_converted_seconds_allowed(self):
        findings = lint(
            "from repro.sim.units import run_for_ns, seconds\n"
            "def f(cell, duration_s):\n"
            "    run_for_ns(cell, seconds(duration_s))\n"
        )
        assert "TIM003" not in rule_ids(findings)

    def test_tim003_ns_identifier_allowed(self):
        findings = lint(
            "def f(sim, duration_ns):\n"
            "    sim.run_for(duration_ns)\n"
        )
        assert "TIM003" not in rule_ids(findings)

    def test_tim003_suppressed(self):
        findings = lint(
            "def f(sim, delay_s):\n"
            "    sim.schedule(delay_s, print)  # slinglint: disable=TIM003\n"
        )
        assert "TIM003" not in rule_ids(findings)


class TestInterproceduralTaintRules:
    """TIMX001/002: dataflow the lexical TIM rules cannot see."""

    def test_timx001_renamed_local_reaches_sink(self):
        findings = lint(
            "def f(sim):\n"
            "    delay_s = 0.5\n"
            "    wait = delay_s\n"
            "    sim.schedule(wait, print)\n"
        )
        assert "TIMX001" in rule_ids(findings)
        # The lexical rule cannot see this flow.
        assert "TIM003" not in rule_ids(findings)

    def test_timx001_seconds_returned_from_helper(self):
        findings = lint(
            "def gap():\n"
            "    gap_seconds = 2.5\n"
            "    return gap_seconds\n"
            "def f(sim):\n"
            "    sim.schedule(gap(), print)\n"
        )
        assert "TIMX001" in rule_ids(findings)

    def test_timx001_tainted_argument_crosses_call(self):
        findings = lint(
            "def helper(sim, delay):\n"
            "    sim.schedule(delay, print)\n"
            "def f(sim, timeout_s):\n"
            "    helper(sim, timeout_s)\n"
        )
        assert "TIMX001" in rule_ids(findings)

    def test_timx001_two_hop_chain(self):
        findings = lint(
            "def inner(sim, d):\n"
            "    sim.schedule(d, print)\n"
            "def middle(sim, v):\n"
            "    inner(sim, v)\n"
            "def f(sim):\n"
            "    interval_s = 1.5\n"
            "    middle(sim, interval_s)\n"
        )
        assert "TIMX001" in rule_ids(findings)

    def test_timx001_ns_to_s_result_is_tainted(self):
        findings = lint(
            "from repro.sim.units import ns_to_s\n"
            "def f(sim, t_ns):\n"
            "    sim.schedule(ns_to_s(t_ns), print)\n"
        )
        assert "TIMX001" in rule_ids(findings)

    def test_timx001_sanitized_flow_clean(self):
        findings = lint(
            "def helper(sim, delay):\n"
            "    sim.schedule(delay, print)\n"
            "def f(sim, timeout_s):\n"
            "    helper(sim, int(timeout_s * 1e9))\n"
        )
        assert "TIMX001" not in rule_ids(findings)

    def test_timx001_converted_local_clean(self):
        findings = lint(
            "from repro.sim.units import seconds\n"
            "def f(sim, delay_s):\n"
            "    wait = seconds(delay_s)\n"
            "    sim.schedule(wait, print)\n"
        )
        assert "TIMX001" not in rule_ids(findings)

    def test_timx001_does_not_duplicate_tim003(self):
        findings = lint(
            "def f(sim, duration_s):\n"
            "    sim.run_for(duration_s)\n"
        )
        assert "TIM003" in rule_ids(findings)
        assert "TIMX001" not in rule_ids(findings)

    def test_timx001_suppressed(self):
        findings = lint(
            "def f(sim):\n"
            "    delay_s = 0.5\n"
            "    wait = delay_s\n"
            "    sim.schedule(wait, print)  # slinglint: disable=TIMX001\n"
        )
        assert "TIMX001" not in rule_ids(findings)

    def test_timx002_seconds_bound_to_ns_name(self):
        findings = lint(
            "def f(timeout_s):\n"
            "    timeout_ns = timeout_s\n"
            "    return timeout_ns\n"
        )
        assert "TIMX002" in rule_ids(findings)

    def test_timx002_converted_binding_clean(self):
        findings = lint(
            "from repro.sim.units import seconds\n"
            "def f(timeout_s):\n"
            "    timeout_ns = seconds(timeout_s)\n"
            "    return timeout_ns\n"
        )
        assert "TIMX002" not in rule_ids(findings)


class TestCheckpointRules:
    """CKPT001/002: the mutable-state inventory's findings."""

    CELL_PATH = "src/repro/cell/widget.py"

    def test_ckpt001_unregistered_attribute(self):
        findings = lint(
            "class Widget:\n"
            "    def __init__(self):\n"
            "        self.count = 0\n"
            "    def poke(self):\n"
            "        self.count += 1\n"
            "        self.last_poke = 42\n",
            path=self.CELL_PATH,
        )
        assert "CKPT001" in rule_ids(findings)

    def test_ckpt001_initialized_attribute_clean(self):
        findings = lint(
            "class Widget:\n"
            "    def __init__(self):\n"
            "        self.count = 0\n"
            "    def poke(self):\n"
            "        self.count += 1\n",
            path=self.CELL_PATH,
        )
        assert "CKPT001" not in rule_ids(findings)

    def test_ckpt001_derived_declaration_exempts(self):
        findings = lint(
            "class Widget:\n"
            '    _checkpoint_derived_ = ("last_poke",)\n'
            "    def __init__(self):\n"
            "        self.count = 0\n"
            "    def poke(self):\n"
            "        self.count += 1\n"
            "        self.last_poke = 42\n",
            path=self.CELL_PATH,
        )
        assert "CKPT001" not in rule_ids(findings)

    def test_ckpt001_dataclass_fields_count_as_initialized(self):
        findings = lint(
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Widget:\n"
            "    count: int = 0\n"
            "    def poke(self):\n"
            "        self.count += 1\n",
            path=self.CELL_PATH,
        )
        assert "CKPT001" not in rule_ids(findings)

    def test_ckpt001_base_class_init_seen(self):
        findings = lint(
            "class Base:\n"
            "    def __init__(self):\n"
            "        self.count = 0\n"
            "class Widget(Base):\n"
            "    def poke(self):\n"
            "        self.count += 1\n",
            path=self.CELL_PATH,
        )
        assert "CKPT001" not in rule_ids(findings)

    def test_ckpt001_inactive_outside_runtime_subsystems(self):
        findings = lint(
            "class Widget:\n"
            "    def poke(self):\n"
            "        self.last_poke = 42\n",
            path="src/repro/perf/harness.py",
        )
        assert "CKPT001" not in rule_ids(findings)

    def test_ckpt002_stale_derived_declaration(self):
        findings = lint(
            "class Widget:\n"
            '    _checkpoint_derived_ = ("ghost",)\n'
            "    def __init__(self):\n"
            "        self.count = 0\n"
            "    def poke(self):\n"
            "        self.count += 1\n",
            path=self.CELL_PATH,
        )
        assert "CKPT002" in rule_ids(findings)


class TestEventSafetyRules:
    def test_evt001_loop_capture(self):
        findings = lint(
            "def f(sim, items):\n"
            "    for item in items:\n"
            "        sim.schedule(10, lambda: print(item))\n"
        )
        assert "EVT001" in rule_ids(findings)

    def test_evt001_default_binding_allowed(self):
        findings = lint(
            "def f(sim, items):\n"
            "    for item in items:\n"
            "        sim.schedule(10, lambda item=item: print(item))\n"
        )
        assert "EVT001" not in rule_ids(findings)

    def test_evt001_argument_passing_allowed(self):
        findings = lint(
            "def f(sim, items):\n"
            "    for item in items:\n"
            "        sim.schedule(10, print, item)\n"
        )
        assert "EVT001" not in rule_ids(findings)

    def test_evt002_zero_delay(self):
        findings = lint("def f(sim):\n    sim.schedule(0, print)\n")
        assert "EVT002" in rule_ids(findings)

    def test_evt002_suppressed(self):
        findings = lint(
            "def f(sim):\n"
            "    sim.schedule(0, print)  # slinglint: disable=EVT002\n"
        )
        assert "EVT002" not in rule_ids(findings)


def _pipeline_class(table_count=1, accesses=2):
    lines = ["class P:", "    def __init__(self, cfg):"]
    for i in range(table_count):
        lines.append(
            f"        self.t{i} = MatchActionTable('t{i}', cfg.max_rus, 48, 8)"
        )
    lines.append("        self.reg = RegisterArray('reg', cfg.max_rus, 8)")
    lines.append("    def _process_pkt(self, frame):")
    for _ in range(accesses):
        lines.append("        self.reg.read(0)")
    lines.append("        return frame")
    return "\n".join(lines) + "\n"


class TestPerfRules:
    PERF_PATH = "src/repro/perf/benchmarks.py"

    def test_perf001_direct_time_call(self):
        findings = lint(
            "import time\nstart = time.perf_counter_ns()\n", path=self.PERF_PATH
        )
        assert "PERF001" in rule_ids(findings)

    def test_perf001_time_import_alone_flagged(self):
        assert "PERF001" in rule_ids(lint("import time\n", path=self.PERF_PATH))
        assert "PERF001" in rule_ids(
            lint("from time import perf_counter_ns\n", path=self.PERF_PATH)
        )

    def test_perf001_timing_module_exempt(self):
        findings = lint(
            "import time\n"
            "def wall_ns():\n"
            "    return time.perf_counter_ns()  # slinglint: disable=DET001\n",
            path="src/repro/perf/timing.py",
        )
        assert "PERF001" not in rule_ids(findings)

    def test_perf001_inactive_outside_perf_package(self):
        findings = lint(
            "import time\nstart = time.time()\n", path="src/repro/sim/engine.py"
        )
        assert "PERF001" not in rule_ids(findings)
        assert "DET001" in rule_ids(findings)

    def test_perf001_sanctioned_helper_clean(self):
        findings = lint(
            "from repro.perf.timing import wall_ns\nstart = wall_ns()\n",
            path=self.PERF_PATH,
        )
        assert "PERF001" not in rule_ids(findings)

    SELF_RESCHEDULE = (
        "class P:\n"
        "    def _tick(self):\n"
        "        self.count += 1\n"
        "        self.sim.schedule(self.period, self._tick)\n"
    )

    def test_perf002_self_reschedule_flagged(self):
        findings = lint(self.SELF_RESCHEDULE, path="src/repro/phy/process.py")
        assert "PERF002" in rule_ids(findings)

    def test_perf002_at_with_literal_delay_flagged(self):
        source = (
            "class P:\n"
            "    def _beat(self):\n"
            "        self.sim.at(self.sim.now + 1000, self._beat)\n"
            "    def _pulse(self):\n"
            "        self.sim.at(1000, self._pulse)\n"
        )
        findings = lint(source, path="src/repro/core/orion.py")
        flagged = [f.line for f in findings if f.rule_id == "PERF002"]
        # Only the literal-time _pulse: _beat's time is a computed BinOp.
        assert flagged == [5]

    def test_perf002_computed_delay_is_deadline_not_periodic(self):
        source = (
            "class P:\n"
            "    def _watchdog(self):\n"
            "        self.sim.schedule(self.deadline - self.sim.now, self._watchdog)\n"
        )
        assert "PERF002" not in rule_ids(
            lint(source, path="src/repro/core/orion.py")
        )

    def test_perf002_rescheduling_a_different_method_unflagged(self):
        source = (
            "class P:\n"
            "    def _tick(self):\n"
            "        self.sim.schedule(100, self._other)\n"
        )
        assert "PERF002" not in rule_ids(
            lint(source, path="src/repro/phy/process.py")
        )

    def test_perf002_schedule_periodic_is_the_sanctioned_api(self):
        source = (
            "class P:\n"
            "    def start(self):\n"
            "        self.sim.schedule_periodic(self.period, self._tick)\n"
        )
        assert "PERF002" not in rule_ids(
            lint(source, path="src/repro/phy/process.py")
        )

    def test_perf002_suppressible_for_legacy_sites(self):
        source = (
            "class P:\n"
            "    def _fire(self):\n"
            "        self.sim.schedule(self.period, self._fire)"
            "  # slinglint: disable=PERF002\n"
        )
        assert "PERF002" not in rule_ids(
            lint(source, path="src/repro/perf/legacy.py")
        )


class TestP4BudgetRules:
    def test_p4r002_table_count(self):
        findings = lint(_pipeline_class(table_count=33))
        assert "P4R002" in rule_ids(findings)
        findings = lint(_pipeline_class(table_count=4))
        assert "P4R002" not in rule_ids(findings)

    def test_p4r003_register_accesses_per_pass(self):
        findings = lint(
            _pipeline_class(accesses=MAX_REGISTER_ACCESSES_PER_PASS + 1)
        )
        assert "P4R003" in rule_ids(findings)
        findings = lint(
            _pipeline_class(accesses=MAX_REGISTER_ACCESSES_PER_PASS)
        )
        assert "P4R003" not in rule_ids(findings)

    def test_p4r001_budget_blows_at_scale(self):
        # ~5.9k entries exhaust the SRAM budget of one pipeline.
        findings = lint(_pipeline_class(), num_rus=6000, num_phys=6000)
        assert "P4R001" in rule_ids(findings)
        findings = lint(_pipeline_class(), num_rus=256, num_phys=256)
        assert "P4R001" not in rule_ids(findings)

    def test_rules_inactive_without_pipeline_state(self):
        findings = lint("x = 1\n", num_rus=10**6, num_phys=10**6)
        assert not [f for f in findings if f.rule_id.startswith("P4R")]

    def test_summary_helpers(self):
        tree = ast.parse(_pipeline_class(table_count=2, accesses=3))
        summary = summarize_program(tree, num_rus=256, num_phys=256)
        assert set(summary.tables) == {"t0", "t1"}
        assert summary.tables["t0"] == 256
        assert summary.registers == {"reg": 256}
        assert summary.max_accesses("reg") == 3


class TestObservabilityRules:
    TELEMETRY_PATH = "src/repro/telemetry/metrics.py"

    def test_obs001_time_import_in_telemetry(self):
        findings = lint("import time\n", path=self.TELEMETRY_PATH)
        assert "OBS001" in rule_ids(findings)

    def test_obs001_wall_clock_call_in_telemetry(self):
        findings = lint(
            "import time  # slinglint: disable=OBS001\n"
            "def f():\n"
            "    return time.monotonic_ns()\n",
            path=self.TELEMETRY_PATH,
        )
        assert "OBS001" in rule_ids(findings)

    def test_obs001_random_import_in_telemetry(self):
        assert "OBS001" in rule_ids(
            lint("import random\n", path=self.TELEMETRY_PATH)
        )
        assert "OBS001" in rule_ids(
            lint("from numpy.random import default_rng\n",
                 path=self.TELEMETRY_PATH)
        )

    def test_obs001_rng_stream_acquisition_in_telemetry(self):
        findings = lint(
            "def f(registry):\n"
            "    return registry.stream('telemetry')\n",
            path=self.TELEMETRY_PATH,
        )
        assert "OBS001" in rule_ids(findings)

    def test_obs001_inactive_outside_telemetry(self):
        findings = lint(
            "import time\nstart = time.monotonic_ns()\n",
            path="src/repro/perf/timing.py",
        )
        assert "OBS001" not in rule_ids(findings)

    def test_obs001_sim_time_arithmetic_allowed(self):
        findings = lint(
            "def span(t_start_ns, t_end_ns):\n"
            "    return t_end_ns - t_start_ns\n",
            path=self.TELEMETRY_PATH,
        )
        assert "OBS001" not in rule_ids(findings)

    def test_obs001_suppressed(self):
        findings = lint(
            "import time  # slinglint: disable=OBS001\n",
            path=self.TELEMETRY_PATH,
        )
        assert "OBS001" not in rule_ids(findings)


class TestParallelRules:
    POOL_PATH = "src/repro/parallel/pool.py"

    def test_par001_module_level_mutable_state_in_parallel(self):
        assert "PAR001" in rule_ids(lint("_CACHE = {}\n", path=self.POOL_PATH))
        assert "PAR001" in rule_ids(
            lint("_SEEN: list = []\n", path=self.POOL_PATH)
        )
        assert "PAR001" in rule_ids(
            lint(
                "from collections import defaultdict\n"
                "_BY_KEY = defaultdict(list)\n",
                path=self.POOL_PATH,
            )
        )

    def test_par001_global_statement_in_parallel(self):
        source = (
            "_COUNT = 0\n"
            "def bump():\n"
            "    global _COUNT\n"
            "    _COUNT += 1\n"
        )
        assert "PAR001" in rule_ids(lint(source, path=self.POOL_PATH))

    def test_par001_immutable_module_constants_allowed(self):
        source = "NAMES = ('a', 'b')\nLIMIT = 4\n__all__ = ['run_shards']\n"
        assert "PAR001" not in rule_ids(lint(source, path=self.POOL_PATH))

    def test_par001_rng_in_shard_worker_anywhere(self):
        source = (
            "import numpy as np\n"
            "def run_sweep_shard(payload):\n"
            "    rng = np.random.default_rng(payload)\n"
            "    return rng.integers(0, 2)\n"
        )
        findings = lint(source, path="src/repro/experiments/sweep.py")
        assert "PAR001" in rule_ids(findings)

    def test_par001_registry_stream_in_shard_worker_clean(self):
        source = (
            "from repro.sim.rng import RngRegistry\n"
            "def run_sweep_shard(payload):\n"
            "    rng = RngRegistry(payload).stream('sweep')\n"
            "    return int(rng.integers(0, 2))\n"
        )
        findings = lint(source, path="src/repro/experiments/sweep.py")
        assert "PAR001" not in rule_ids(findings)

    def test_par001_rng_outside_shard_scope_not_flagged(self):
        source = (
            "import numpy as np\n"
            "def helper(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        findings = lint(source, path="src/repro/experiments/sweep.py")
        assert "PAR001" not in rule_ids(findings)

    def test_par001_suppression(self):
        source = "_CACHE = {}  # slinglint: disable=PAR001\n"
        assert "PAR001" not in rule_ids(lint(source, path=self.POOL_PATH))


class TestFramework:
    def test_rule_ids_unique_and_titled(self):
        rules = all_rules()
        ids = [r.rule_id for r in rules]
        assert len(ids) == len(set(ids))
        for rule in rules:
            assert rule.title and rule.fix_hint
            assert isinstance(rule.severity, Severity)

    def test_suppression_in_string_literal_ignored(self):
        per_line, whole_file = parse_suppressions(
            's = "# slinglint: disable=DET001"\n'
        )
        assert per_line == {} and whole_file == set()

    def test_findings_carry_location_and_hint(self):
        findings = lint("import time\nt = time.time()\n", path="pkg/mod.py")
        (finding,) = [f for f in findings if f.rule_id == "DET001"]
        assert finding.location == "pkg/mod.py:2:5"
        assert finding.fix_hint
        assert finding.to_dict()["severity"] == "error"

    def test_unknown_format_rejected(self):
        from repro.analysis import format_findings

        with pytest.raises(ValueError):
            format_findings([], fmt="xml")

    def test_in_module_matching(self):
        ctx = LintContext.for_source("x = 1\n", path="src/repro/sim/rng.py")
        assert ctx.in_module("sim", "rng.py")
        assert not ctx.in_module("net", "rng.py")
