"""Tie-order race detector: ``Simulator(tie_shuffle_seed=...)``.

Engine-level behaviour, plus the headline acceptance check: the Fig 8
failure scenario produces identical canonical traces whether
same-timestamp events run in FIFO order or in seeded-shuffled order —
i.e. no component depends on how the engine serializes concurrent
events.
"""

import numpy as np
import pytest

from repro.apps.video import VideoReceiver, VideoSender
from repro.cell.config import CellConfig
from repro.cell.deployment import build_baseline_cell, build_slingshot_cell
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder
from repro.sim.units import s_to_ns


class TestEngineTieShuffle:
    def test_default_is_fifo(self):
        sim = Simulator()
        order = []
        for tag in range(6):
            sim.schedule(100, order.append, tag)
        sim.run()
        assert order == [0, 1, 2, 3, 4, 5]

    def test_shuffle_permutes_ties(self):
        sim = Simulator(tie_shuffle_seed=1)
        order = []
        for tag in range(32):
            sim.schedule(100, order.append, tag)
        sim.run()
        assert sorted(order) == list(range(32))
        assert order != list(range(32))

    def test_shuffle_is_deterministic_per_seed(self):
        def run(seed):
            sim = Simulator(tie_shuffle_seed=seed)
            order = []
            for tag in range(16):
                sim.schedule(100, order.append, tag)
            sim.run()
            return order

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_time_order_always_respected(self):
        sim = Simulator(tie_shuffle_seed=3)
        order = []
        sim.schedule(200, order.append, "late")
        sim.schedule(100, order.append, "early")
        sim.run()
        assert order == ["early", "late"]

    def test_shuffle_permutation_matches_scalar_key_draws(self):
        # The engine batches its tie-key draws; the permutation must be
        # exactly what one scalar ``integers(0, 2**32)`` draw per
        # scheduled event produces (the pre-batching behaviour).
        count, seed = 48, 11
        sim = Simulator(tie_shuffle_seed=seed)
        order = []
        for tag in range(count):
            sim.schedule(100, order.append, tag)
        sim.run()

        reference = np.random.Generator(np.random.PCG64(seed))
        keys = [int(reference.integers(0, 1 << 32)) for _ in range(count)]
        expected = sorted(range(count), key=lambda tag: (keys[tag], tag))
        assert order == expected

    def test_shuffle_order_survives_compaction(self):
        # Cancelling enough ties to trigger compaction must not change
        # the relative firing order of the survivors.
        def survivor_order(threshold):
            sim = Simulator(tie_shuffle_seed=23, compaction_threshold=threshold)
            order = []
            handles = [sim.schedule(100, order.append, tag) for tag in range(48)]
            for tag in range(0, 48, 3):
                handles[tag].cancel()
            sim.run()
            return order

        aggressive = survivor_order(threshold=2)
        never = survivor_order(threshold=10**9)
        assert aggressive == never
        assert sorted(aggressive) == [t for t in range(48) if t % 3]


class TestCanonicalTrace:
    def test_digest_invariant_to_concurrent_order(self):
        a, b = TraceRecorder(), TraceRecorder()
        a.record(10, "x", k=1)
        a.record(10, "y", k=2)
        b.record(10, "y", k=2)
        b.record(10, "x", k=1)
        assert a.digest() == b.digest()

    def test_digest_sensitive_to_content(self):
        a, b = TraceRecorder(), TraceRecorder()
        a.record(10, "x", k=1)
        b.record(10, "x", k=2)
        assert a.digest() != b.digest()


def _fig8_failure_digest(slingshot: bool, tie_shuffle_seed) -> str:
    """Fig 8 failure scenario: video to UE 1, SIGKILL the primary PHY."""
    config = CellConfig(seed=0, tie_shuffle_seed=tie_shuffle_seed)
    cell = build_slingshot_cell(config) if slingshot else build_baseline_cell(config)
    ue = cell.ue(1)
    sender = VideoSender(
        cell.sim,
        cell.server,
        ue_id=ue.ue_id,
        flow_id="video",
        bearer_id=1,
        rng=cell.rng.stream("video"),
    )
    VideoReceiver(cell.sim, ue, flow_id="video")
    cell.run_for(s_to_ns(0.2))
    sender.start()
    cell.kill_phy_at(0, s_to_ns(0.8))
    cell.run_until(s_to_ns(2.0))
    assert len(cell.trace) > 0
    return cell.trace.digest()


@pytest.mark.slow
@pytest.mark.parametrize("slingshot", [True, False], ids=["slingshot", "baseline"])
def test_fig8_trace_identical_under_tie_shuffle(slingshot):
    reference = _fig8_failure_digest(slingshot, tie_shuffle_seed=None)
    assert _fig8_failure_digest(slingshot, tie_shuffle_seed=7) == reference
    assert _fig8_failure_digest(slingshot, tie_shuffle_seed=99) == reference
