"""Unit tests for the discrete-event simulator core."""

import numpy as np
import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.process import PeriodicProcess, Process
from repro.sim.rng import BatchedIntegers, BatchedUniform, RngRegistry
from repro.sim.trace import TraceRecorder
from repro.sim.units import MS, SECOND, US, ms_to_ns, ns_to_ms, ns_to_us, s_to_ns, us_to_ns


class TestSimulatorScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, order.append, "c")
        sim.schedule(10, order.append, "a")
        sim.schedule(20, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for tag in range(5):
            sim.schedule(100, order.append, tag)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]
        assert sim.now == 42

    def test_zero_delay_runs_after_current_instant_events(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(0, order.append, "nested")

        sim.schedule(5, first)
        sim.schedule(5, order.append, "second")
        sim.run()
        assert order == ["first", "second", "nested"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(50, lambda: None)

    def test_run_until_executes_boundary_events(self):
        sim = Simulator()
        seen = []
        sim.at(100, seen.append, "boundary")
        sim.at(101, seen.append, "beyond")
        sim.run_until(100)
        assert seen == ["boundary"]
        assert sim.now == 100
        sim.run_until(200)
        assert seen == ["boundary", "beyond"]

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run_until(12345)
        assert sim.now == 12345

    def test_run_for_is_relative(self):
        sim = Simulator()
        sim.run_until(100)
        sim.run_for(50)
        assert sim.now == 150


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(10, seen.append, "x")
        handle.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent_and_safe_after_fire(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        sim.run()
        assert handle.fired
        handle.cancel()  # No error.

    def test_pending_reflects_state(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        assert handle.pending
        sim.run()
        assert not handle.pending

    def test_pending_events_counts_live_only(self):
        sim = Simulator()
        keep = sim.schedule(10, lambda: None)
        drop = sim.schedule(20, lambda: None)
        drop.cancel()
        assert sim.pending_events == 1

    def test_stop_halts_run(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: (seen.append(1), sim.stop()))
        sim.schedule(20, seen.append, 2)
        sim.run()
        assert seen == [(1, None)] or len(seen) == 1


class TestCompaction:
    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            Simulator(compaction_threshold=0)

    def test_compaction_triggers_under_cancel_churn(self):
        sim = Simulator(compaction_threshold=8)
        handles = [sim.schedule(1000 + i, lambda: None) for i in range(32)]
        for handle in handles[:24]:
            handle.cancel()
        assert sim.compactions >= 1
        assert sim.queued_entries == 8
        assert sim.pending_events == 8

    def test_compaction_preserves_fifo_tie_order(self):
        # Survivors of a compaction must still fire in scheduling order,
        # including same-timestamp ties.
        sim = Simulator(compaction_threshold=4)
        order = []
        handles = [sim.schedule(100, order.append, tag) for tag in range(40)]
        for tag in range(0, 40, 2):
            handles[tag].cancel()
        assert sim.compactions >= 1
        sim.run()
        assert order == list(range(1, 40, 2))

    def test_compaction_is_invisible_to_execution_order(self):
        # The same cancel-heavy workload with aggressive and disabled
        # compaction fires the identical event sequence.
        def run(threshold):
            sim = Simulator(compaction_threshold=threshold)
            order = []
            handles = {}

            def work(i):
                order.append(i)
                stale = handles.pop(i - 2, None)
                if stale is not None:
                    stale.cancel()
                if i < 200:
                    handles[i] = sim.schedule(50 + (i % 3), work, i + 1)

            sim.schedule(0, work, 0)
            sim.run()
            return order

        assert run(1) == run(10**9)

    def test_watchdog_churn_keeps_heap_bounded(self):
        # Orion's watchdog pattern: every response cancels and re-arms a
        # timeout, so nearly every scheduled event is cancelled. Without
        # compaction the heap grows with the response count; with it the
        # raw heap size stays around the compaction threshold.
        responses = 5_000
        sim = Simulator(compaction_threshold=64)
        state = {"left": responses, "watchdog": None, "max_heap": 0}

        def on_timeout():
            pass

        def on_response():
            if state["watchdog"] is not None:
                state["watchdog"].cancel()
            state["watchdog"] = sim.schedule(1_000_000, on_timeout)
            state["max_heap"] = max(state["max_heap"], sim.queued_entries)
            if state["left"] > 0:
                state["left"] -= 1
                sim.schedule(1_000, on_response)

        sim.schedule(0, on_response)
        sim.run()
        assert sim.compactions > 0
        # Bounded by ~2x threshold plus the couple of live events, far
        # below the ~5000 entries an uncompacted heap would reach.
        assert state["max_heap"] <= 2 * sim.compaction_threshold + 4
        assert sim.events_processed == responses + 2  # responses + final timeout

    def test_cancel_after_fire_does_not_corrupt_accounting(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        live = sim.schedule(20, lambda: None)
        sim.run_until(15)
        handle.cancel()  # Fired already: must not count as queued garbage.
        handle.cancel()
        assert sim.pending_events == 1
        assert live.pending

    def test_run_until_leaves_no_cancelled_entries_behind_compaction(self):
        # Cancelled entries beyond the run_until horizon are reclaimed by
        # later compactions rather than lingering forever.
        sim = Simulator(compaction_threshold=4)
        far = [sim.schedule(10_000 + i, lambda: None) for i in range(16)]
        sim.schedule(10, lambda: None)
        sim.run_until(100)
        for handle in far:
            handle.cancel()
        assert sim.queued_entries == 0
        assert sim.pending_events == 0


class TestBatchedRng:
    def test_batched_uniform_matches_scalar_sequence(self):
        for block in (1, 7, 256):
            batched = BatchedUniform(
                np.random.Generator(np.random.PCG64(42)), block=block
            )
            scalar = np.random.Generator(np.random.PCG64(42))
            assert [batched.random() for _ in range(1000)] == [
                float(scalar.random()) for _ in range(1000)
            ]

    def test_batched_integers_matches_scalar_sequence(self):
        batched = BatchedIntegers(
            np.random.Generator(np.random.PCG64(7)), 0, 1 << 32, block=64
        )
        scalar = np.random.Generator(np.random.PCG64(7))
        assert [batched.draw() for _ in range(1000)] == [
            int(scalar.integers(0, 1 << 32)) for _ in range(1000)
        ]

    def test_registry_batched_uniform_owns_named_stream(self):
        registry = RngRegistry(seed=9)
        batched = registry.batched_uniform("tie", block=16)
        reference = RngRegistry(seed=9).stream("tie")
        assert [batched.random() for _ in range(64)] == [
            float(reference.random()) for _ in range(64)
        ]


class TestPeriodicProcess:
    def test_ticks_at_fixed_period(self):
        sim = Simulator()
        times = []

        class Ticker(PeriodicProcess):
            def on_tick(self, tick):
                times.append((tick, self.now))

        Ticker(sim, "t", period=100)
        sim.run_until(350)
        assert times == [(0, 0), (1, 100), (2, 200), (3, 300)]

    def test_stop_cancels_future_ticks(self):
        sim = Simulator()
        count = []

        class Ticker(PeriodicProcess):
            def on_tick(self, tick):
                count.append(tick)
                if tick == 2:
                    self.stop()

        Ticker(sim, "t", period=10)
        sim.run_until(1000)
        assert count == [0, 1, 2]

    def test_invalid_period_rejected(self):
        sim = Simulator()

        class Ticker(PeriodicProcess):
            def on_tick(self, tick):
                pass

        with pytest.raises(ValueError):
            Ticker(sim, "t", period=0)

    def test_start_offset_shifts_first_tick(self):
        sim = Simulator()
        times = []

        class Ticker(PeriodicProcess):
            def on_tick(self, tick):
                times.append(self.now)

        Ticker(sim, "t", period=100, start_offset=37)
        sim.run_until(250)
        assert times == [37, 137, 237]


class TestUnits:
    def test_round_trips(self):
        assert us_to_ns(500) == 500 * US
        assert ms_to_ns(50) == 50 * MS
        assert s_to_ns(6.2) == int(6.2 * SECOND)
        assert ns_to_us(1500) == 1.5
        assert ns_to_ms(2 * MS) == 2.0

    def test_one_tti_is_500_us(self):
        assert us_to_ns(500) == 500_000


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(seed=7)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_are_independent_of_request_order(self):
        r1 = RngRegistry(seed=7)
        r2 = RngRegistry(seed=7)
        _ = r2.stream("other")  # Extra stream requested first.
        assert r1.stream("chan").random() == r2.stream("chan").random()

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("x").random()
        b = RngRegistry(seed=2).stream("x").random()
        assert a != b

    def test_different_names_differ(self):
        registry = RngRegistry(seed=3)
        assert registry.stream("x").random() != registry.stream("y").random()


class TestTraceRecorder:
    def test_records_and_indexes_by_category(self):
        trace = TraceRecorder()
        trace.record(10, "a", value=1)
        trace.record(20, "b", value=2)
        trace.record(30, "a", value=3)
        assert [e.time for e in trace.events("a")] == [10, 30]
        assert trace.count("b") == 1
        assert trace.last("a")["value"] == 3

    def test_disabled_recorder_drops_events(self):
        trace = TraceRecorder()
        trace.enabled = False
        trace.record(1, "x")
        assert len(trace) == 0

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(1, "x")
        trace.clear()
        assert trace.count("x") == 0
        assert trace.categories() == []


class TestRollingDigest:
    """The bounded-memory digest contract behind soak runs.

    ``rolling_digest()`` must equal the digest of a never-evicting
    recorder with the same ``window_ns``, and ``window_ns=None`` must
    stay byte-identical to the historical flat SHA-256 (the recorded
    golden digests depend on that).
    """

    @staticmethod
    def _feed(trace, n=60, span=600):
        # Deterministic mixed-category events, deliberately recorded
        # out of time order within a window (canonical order fixes it).
        for i in range(n):
            t = (i * 37) % span
            trace.record(t, f"cat{i % 3}", seq=i, value=i * i)

    def test_windowed_digest_equals_flat_digest_structureless(self):
        # One window covering the whole trace == the flat digest.
        flat = TraceRecorder()
        wide = TraceRecorder(window_ns=10_000)
        self._feed(flat)
        self._feed(wide)
        assert wide.digest() == flat.digest()

    def test_eviction_preserves_rolling_digest(self):
        keep = TraceRecorder(window_ns=100)
        evicting = TraceRecorder(window_ns=100)
        self._feed(keep)
        self._feed(evicting)
        evicted = evicting.evict_before(400)
        assert evicted > 0
        assert evicting.evicted_events == evicted
        assert len(evicting) == len(keep) - evicted
        assert evicting.rolling_digest() == keep.rolling_digest()

    def test_incremental_eviction_matches_single_eviction(self):
        stepwise = TraceRecorder(window_ns=100)
        oneshot = TraceRecorder(window_ns=100)
        self._feed(stepwise)
        self._feed(oneshot)
        for horizon in (150, 320, 500):
            stepwise.evict_before(horizon)
        oneshot.evict_before(500)
        assert stepwise.rolling_digest() == oneshot.rolling_digest()
        assert stepwise.evicted_events == oneshot.evicted_events

    def test_recording_below_evicted_horizon_rejected(self):
        trace = TraceRecorder(window_ns=100)
        self._feed(trace)
        trace.evict_before(300)
        with pytest.raises(ValueError, match="evicted"):
            trace.record(150, "late")

    def test_evict_requires_window(self):
        trace = TraceRecorder()
        with pytest.raises(ValueError, match="window_ns"):
            trace.evict_before(100)

    def test_window_size_changes_digest_but_not_equality(self):
        # Different window sizes chain differently (digests are only
        # comparable at equal window_ns), but each size is internally
        # deterministic.
        a100, b100 = TraceRecorder(window_ns=100), TraceRecorder(window_ns=100)
        a200 = TraceRecorder(window_ns=200)
        for trace in (a100, b100, a200):
            self._feed(trace)
        assert a100.digest() == b100.digest()
        assert a100.digest() != a200.digest()
