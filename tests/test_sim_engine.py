"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.process import PeriodicProcess, Process
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.sim.units import MS, SECOND, US, ms_to_ns, ns_to_ms, ns_to_us, s_to_ns, us_to_ns


class TestSimulatorScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, order.append, "c")
        sim.schedule(10, order.append, "a")
        sim.schedule(20, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for tag in range(5):
            sim.schedule(100, order.append, tag)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]
        assert sim.now == 42

    def test_zero_delay_runs_after_current_instant_events(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(0, order.append, "nested")

        sim.schedule(5, first)
        sim.schedule(5, order.append, "second")
        sim.run()
        assert order == ["first", "second", "nested"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(50, lambda: None)

    def test_run_until_executes_boundary_events(self):
        sim = Simulator()
        seen = []
        sim.at(100, seen.append, "boundary")
        sim.at(101, seen.append, "beyond")
        sim.run_until(100)
        assert seen == ["boundary"]
        assert sim.now == 100
        sim.run_until(200)
        assert seen == ["boundary", "beyond"]

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run_until(12345)
        assert sim.now == 12345

    def test_run_for_is_relative(self):
        sim = Simulator()
        sim.run_until(100)
        sim.run_for(50)
        assert sim.now == 150


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(10, seen.append, "x")
        handle.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent_and_safe_after_fire(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        sim.run()
        assert handle.fired
        handle.cancel()  # No error.

    def test_pending_reflects_state(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        assert handle.pending
        sim.run()
        assert not handle.pending

    def test_pending_events_counts_live_only(self):
        sim = Simulator()
        keep = sim.schedule(10, lambda: None)
        drop = sim.schedule(20, lambda: None)
        drop.cancel()
        assert sim.pending_events == 1

    def test_stop_halts_run(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: (seen.append(1), sim.stop()))
        sim.schedule(20, seen.append, 2)
        sim.run()
        assert seen == [(1, None)] or len(seen) == 1


class TestPeriodicProcess:
    def test_ticks_at_fixed_period(self):
        sim = Simulator()
        times = []

        class Ticker(PeriodicProcess):
            def on_tick(self, tick):
                times.append((tick, self.now))

        Ticker(sim, "t", period=100)
        sim.run_until(350)
        assert times == [(0, 0), (1, 100), (2, 200), (3, 300)]

    def test_stop_cancels_future_ticks(self):
        sim = Simulator()
        count = []

        class Ticker(PeriodicProcess):
            def on_tick(self, tick):
                count.append(tick)
                if tick == 2:
                    self.stop()

        Ticker(sim, "t", period=10)
        sim.run_until(1000)
        assert count == [0, 1, 2]

    def test_invalid_period_rejected(self):
        sim = Simulator()

        class Ticker(PeriodicProcess):
            def on_tick(self, tick):
                pass

        with pytest.raises(ValueError):
            Ticker(sim, "t", period=0)

    def test_start_offset_shifts_first_tick(self):
        sim = Simulator()
        times = []

        class Ticker(PeriodicProcess):
            def on_tick(self, tick):
                times.append(self.now)

        Ticker(sim, "t", period=100, start_offset=37)
        sim.run_until(250)
        assert times == [37, 137, 237]


class TestUnits:
    def test_round_trips(self):
        assert us_to_ns(500) == 500 * US
        assert ms_to_ns(50) == 50 * MS
        assert s_to_ns(6.2) == int(6.2 * SECOND)
        assert ns_to_us(1500) == 1.5
        assert ns_to_ms(2 * MS) == 2.0

    def test_one_tti_is_500_us(self):
        assert us_to_ns(500) == 500_000


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(seed=7)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_are_independent_of_request_order(self):
        r1 = RngRegistry(seed=7)
        r2 = RngRegistry(seed=7)
        _ = r2.stream("other")  # Extra stream requested first.
        assert r1.stream("chan").random() == r2.stream("chan").random()

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("x").random()
        b = RngRegistry(seed=2).stream("x").random()
        assert a != b

    def test_different_names_differ(self):
        registry = RngRegistry(seed=3)
        assert registry.stream("x").random() != registry.stream("y").random()


class TestTraceRecorder:
    def test_records_and_indexes_by_category(self):
        trace = TraceRecorder()
        trace.record(10, "a", value=1)
        trace.record(20, "b", value=2)
        trace.record(30, "a", value=3)
        assert [e.time for e in trace.events("a")] == [10, 30]
        assert trace.count("b") == 1
        assert trace.last("a")["value"] == 3

    def test_disabled_recorder_drops_events(self):
        trace = TraceRecorder()
        trace.enabled = False
        trace.record(1, "x")
        assert len(trace) == 0

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(1, "x")
        trace.clear()
        assert trace.count("x") == 0
        assert trace.categories() == []
