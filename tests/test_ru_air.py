"""Tests for the RU model and the air interface."""

import numpy as np
import pytest

from repro.fronthaul.air import AirInterface, UeRadioPort
from repro.fronthaul.oran import (
    CplaneMessage,
    UlGrant,
    UplaneDownlink,
    UplaneUplink,
    uplane_wire_bytes,
)
from repro.fronthaul.ru import RadioUnit
from repro.net.addresses import MacAddress
from repro.net.link import Link
from repro.net.packet import EtherType, EthernetFrame
from repro.phy.channel import UeChannelModel
from repro.phy.modulation import Modulation
from repro.phy.numerology import Numerology, SlotClock, TddPattern
from repro.phy.transport import LinkDirection, TransportBlock
from repro.sim.engine import Simulator
from repro.sim.units import MS, US


class RecordingListener:
    def __init__(self):
        self.control = []
        self.data = []

    def on_dl_control(self, abs_slot, grants, vran_instance_id):
        self.control.append((abs_slot, grants, vran_instance_id))

    def on_dl_data(self, abs_slot, block, realization):
        self.data.append((abs_slot, block, realization))


class UplinkSink:
    def __init__(self, sim):
        self.sim = sim
        self.frames = []

    def receive_frame(self, frame, ingress):
        self.frames.append(frame)


def build_ru(sim):
    clock = SlotClock(Numerology())
    air = AirInterface()
    sink = UplinkSink(sim)
    uplink = Link(sim, sink, bandwidth_bps=0, latency_ns=0)
    ru = RadioUnit(
        sim=sim, ru_id=0, mac=MacAddress(0x10),
        virtual_phy_mac=MacAddress(0xF0),
        slot_clock=clock, tdd=TddPattern(), air=air, uplink=uplink,
    )
    ru.start()
    return ru, air, sink, clock


def cplane(abs_slot, grants=(), phy=0, instance=1):
    clock = SlotClock(Numerology())
    return CplaneMessage(
        ru_id=0, address=clock.address_of(abs_slot), abs_slot=abs_slot,
        ul_grants=list(grants), source_phy_id=phy, vran_instance_id=instance,
    )


def frame_of(payload, src=MacAddress(0x20)):
    return EthernetFrame(
        src=src, dst=MacAddress(0x10), ethertype=EtherType.ECPRI,
        payload=payload, wire_bytes=100,
    )


class TestAirInterface:
    def test_attach_and_broadcast(self):
        air = AirInterface()
        listener = RecordingListener()
        channel = UeChannelModel(np.random.default_rng(0))
        air.attach(UeRadioPort(1, channel, listener))
        air.broadcast_dl_control(5, [], vran_instance_id=3)
        assert listener.control == [(5, [], 3)]

    def test_detached_port_silent(self):
        air = AirInterface()
        listener = RecordingListener()
        port = UeRadioPort(1, UeChannelModel(np.random.default_rng(0)), listener)
        air.attach(port)
        port.attached = False
        air.broadcast_dl_control(5, [], vran_instance_id=1)
        assert listener.control == []

    def test_dl_data_only_reaches_target_ue(self):
        air = AirInterface()
        listeners = {}
        for ue_id in (1, 2):
            listeners[ue_id] = RecordingListener()
            air.attach(
                UeRadioPort(
                    ue_id, UeChannelModel(np.random.default_rng(ue_id)),
                    listeners[ue_id],
                )
            )
        block = TransportBlock(
            ue_id=2, direction=LinkDirection.DOWNLINK, harq_process=0,
            modulation=Modulation.QPSK, prbs=10, data=[], size_bytes=10,
        )
        air.deliver_dl_data(7, block)
        assert listeners[1].data == []
        assert len(listeners[2].data) == 1

    def test_collect_uplink_pops_and_drops_stale(self):
        air = AirInterface()
        listener = RecordingListener()
        port = UeRadioPort(1, UeChannelModel(np.random.default_rng(0)), listener)
        air.attach(port)
        port.stage_uplink(3, None, [(1, 0, 9, True)])
        port.stage_uplink(10, None, [(1, 0, 10, True)])
        captured = air.collect_uplink(10)
        assert len(captured) == 1
        assert captured[0].dl_feedback[0][2] == 10
        # Slot 3's staged entry was stale and silently dropped.
        assert air.collect_uplink(3) == []


class TestRadioUnit:
    def test_control_broadcast_after_deadline(self):
        sim = Simulator()
        ru, air, sink, clock = build_ru(sim)
        listener = RecordingListener()
        air.attach(UeRadioPort(1, UeChannelModel(np.random.default_rng(0)), listener))
        ru.receive_frame(frame_of(cplane(2)), ingress=None)
        sim.run_until(clock.slot_start(2) + 300 * US)
        assert [c[0] for c in listener.control] == [2]

    def test_slot_without_control_counts_gap(self):
        sim = Simulator()
        ru, air, sink, clock = build_ru(sim)
        sim.run_until(5 * MS)  # 10 slots, no PHY traffic at all.
        assert ru.stats.slots_without_control >= 8

    def test_uplink_capture_ships_to_virtual_mac(self):
        sim = Simulator()
        ru, air, sink, clock = build_ru(sim)
        listener = RecordingListener()
        port = UeRadioPort(1, UeChannelModel(np.random.default_rng(0)), listener)
        air.attach(port)
        # Slot 4 is UL in DDDSU. Provide control for it, stage a block.
        ru.receive_frame(frame_of(cplane(4)), ingress=None)
        block = TransportBlock(
            ue_id=1, direction=LinkDirection.UPLINK, harq_process=0,
            modulation=Modulation.QPSK, prbs=10, data=[], size_bytes=10, tb_id=42,
        )
        port.stage_uplink(4, block, [])
        sim.run_until(clock.slot_start(5) + 100 * US)
        assert len(sink.frames) == 1
        frame = sink.frames[0]
        assert frame.dst == ru.virtual_phy_mac
        assert isinstance(frame.payload, UplaneUplink)
        assert frame.payload.block.tb_id == 42

    def test_no_capture_without_cplane(self):
        """A dead PHY means no UL C-plane → the RU captures nothing —
        exactly how uplink blacks out during failover."""
        sim = Simulator()
        ru, air, sink, clock = build_ru(sim)
        listener = RecordingListener()
        port = UeRadioPort(1, UeChannelModel(np.random.default_rng(0)), listener)
        air.attach(port)
        block = TransportBlock(
            ue_id=1, direction=LinkDirection.UPLINK, harq_process=0,
            modulation=Modulation.QPSK, prbs=10, data=[], size_bytes=10,
        )
        port.stage_uplink(4, block, [])
        sim.run_until(clock.slot_start(6))
        assert sink.frames == []

    def test_conflicting_sources_detected(self):
        sim = Simulator()
        ru, air, sink, clock = build_ru(sim)
        ru.receive_frame(frame_of(cplane(2, phy=0)), ingress=None)
        ru.receive_frame(frame_of(cplane(2, phy=1)), ingress=None)
        assert ru.stats.conflicting_source_slots == 1

    def test_single_source_not_flagged(self):
        sim = Simulator()
        ru, air, sink, clock = build_ru(sim)
        ru.receive_frame(frame_of(cplane(2, phy=0)), ingress=None)
        ru.receive_frame(frame_of(cplane(3, phy=0)), ingress=None)
        assert ru.stats.conflicting_source_slots == 0

    def test_dl_data_radiated_with_control(self):
        sim = Simulator()
        ru, air, sink, clock = build_ru(sim)
        listener = RecordingListener()
        air.attach(UeRadioPort(1, UeChannelModel(np.random.default_rng(0)), listener))
        block = TransportBlock(
            ue_id=1, direction=LinkDirection.DOWNLINK, harq_process=0,
            modulation=Modulation.QPSK, prbs=10, data=[], size_bytes=10,
        )
        ru.receive_frame(frame_of(cplane(2)), ingress=None)
        ru.receive_frame(
            frame_of(
                UplaneDownlink(
                    ru_id=0, address=clock.address_of(2), abs_slot=2,
                    block=block, source_phy_id=0,
                )
            ),
            ingress=None,
        )
        sim.run_until(clock.slot_start(2) + 300 * US)
        assert len(listener.data) == 1


class TestWireSizes:
    def test_full_bandwidth_slot_volume(self):
        """A 273-PRB slot of IQ data is hundreds of kilobytes — the
        volume argument for the in-switch middlebox (§5)."""
        assert uplane_wire_bytes(273) > 80_000

    def test_scales_with_prbs(self):
        assert uplane_wire_bytes(100) < uplane_wire_bytes(200)
