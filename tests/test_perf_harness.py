"""Perf harness, sampler, and regression-gate tests.

Unit-level coverage of report (de)serialization and every ``--check``
failure mode, behavioural checks that the ``_pop`` sampler is invisible
to event execution, and — marked slow — the tier-1 smoke: a real
``python -m repro perf --check --quick`` run against the committed
``benchmarks/BENCH_perf.json``.
"""

import pytest

from repro.perf.harness import (
    MIN_PARALLEL_SPEEDUP,
    BenchmarkResult,
    PerfReport,
    check_report,
    load_report,
    parallel_speedup_gate,
    run_benchmarks,
)
from repro.perf.runner import default_bench_path
from repro.perf.runner import main as perf_main
from repro.perf.sampler import PopSampler, subsystem_of
from repro.sim.engine import Simulator


def _result(name, rate=1000.0, digest=None, kind="micro"):
    return BenchmarkResult(
        name=name, kind=kind, description="", events=1000,
        wall_seconds=1000.0 / rate, events_per_sec=rate, digest=digest,
    )


class TestCheckReport:
    def test_clean_pass(self):
        baseline = PerfReport(quick=False, results={"a": _result("a")})
        current = PerfReport(quick=False, results={"a": _result("a")})
        assert check_report(current, baseline) == []

    def test_missing_benchmark_fails(self):
        baseline = PerfReport(quick=False, results={"a": _result("a")})
        current = PerfReport(quick=False, results={})
        failures = check_report(current, baseline)
        assert len(failures) == 1 and "not run" in failures[0]

    def test_digest_change_fails_regardless_of_rate(self):
        baseline = PerfReport(
            quick=False, results={"m": _result("m", digest="a" * 64, kind="macro")}
        )
        current = PerfReport(
            quick=False,
            results={"m": _result("m", rate=9999.0, digest="b" * 64, kind="macro")},
        )
        failures = check_report(current, baseline)
        assert any("digest changed" in f for f in failures)

    def test_rate_below_tolerance_fails(self):
        baseline = PerfReport(quick=False, results={"a": _result("a", rate=1000.0)})
        current = PerfReport(quick=False, results={"a": _result("a", rate=400.0)})
        assert check_report(current, baseline, tolerance=0.5)
        assert not check_report(current, baseline, tolerance=0.3)
        assert not check_report(current, baseline, tolerance=0.0)

    def test_engine_speedup_gate(self):
        baseline = PerfReport(quick=False)
        current = PerfReport(quick=False, speedups={"engine_churn": 1.1})
        failures = check_report(current, baseline)
        assert any("speedup[engine_churn]" in f for f in failures)
        # The same measurement passes the relaxed --quick gate.
        assert check_report(PerfReport(quick=True, speedups={"engine_churn": 1.1}),
                            PerfReport(quick=True)) == []

    def test_codec_speedup_gate(self):
        current = PerfReport(quick=False, speedups={"fapi_codec": 0.9})
        failures = check_report(current, PerfReport(quick=False))
        assert any("speedup[fapi_codec]" in f for f in failures)

    def test_report_round_trips_through_json(self, tmp_path):
        report = PerfReport(
            quick=True,
            results={
                "m": BenchmarkResult(
                    name="m", kind="macro", description="d", events=10,
                    wall_seconds=2.0, events_per_sec=5.0, sim_ns=1_000_000,
                    sim_wall_ratio=0.0005, digest="c" * 64,
                    subsystem_shares={"repro.phy": 0.5, "repro.sim": 0.5},
                    extra={"compactions": 3.0},
                )
            },
            speedups={"engine_churn": 1.5},
        )
        path = tmp_path / "bench.json"
        report.write(path)
        loaded = load_report(path)
        assert loaded.quick is True
        assert loaded.speedups == {"engine_churn": 1.5}
        restored = loaded.results["m"]
        assert restored.digest == "c" * 64
        assert restored.sim_ns == 1_000_000
        assert restored.subsystem_shares == {"repro.phy": 0.5, "repro.sim": 0.5}
        assert restored.extra == {"compactions": 3.0}
        assert check_report(loaded, report) == []

    def test_unknown_benchmark_name_rejected(self):
        with pytest.raises(KeyError):
            run_benchmarks(names=["no_such_benchmark"], quick=True)

    def test_phy_batch_speedup_gate(self):
        current = PerfReport(quick=False, speedups={"phy_slot_batch": 1.0})
        failures = check_report(current, PerfReport(quick=False))
        assert any("speedup[phy_slot_batch]" in f for f in failures)
        # 1.10x clears the relaxed --quick gate but not the full one.
        assert check_report(
            PerfReport(quick=True, speedups={"phy_slot_batch": 1.10}),
            PerfReport(quick=True),
        ) == []

    def test_parallel_speedup_gate_scales_with_probe(self):
        # Real >= 3x parallel capacity demands the full 1.8x.
        assert parallel_speedup_gate(4.0) == MIN_PARALLEL_SPEEDUP
        assert parallel_speedup_gate(3.0) == MIN_PARALLEL_SPEEDUP
        # Throttled machines get roughly half the probe...
        assert parallel_speedup_gate(2.0) == pytest.approx(1.0)
        # ...but never less than the no-catastrophic-slowdown floor.
        assert parallel_speedup_gate(0.5) == pytest.approx(0.4)
        assert parallel_speedup_gate(0.0) == pytest.approx(0.4)

    def test_parallel_campaign_gate_uses_probe_from_extra(self):
        parallel = _result("campaign_shards_parallel", kind="macro")
        parallel.extra = {"measured_parallelism": 4.0}
        current = PerfReport(
            quick=False,
            results={"campaign_shards_parallel": parallel},
            speedups={"parallel_campaign": 1.5},
        )
        failures = check_report(current, PerfReport(quick=False))
        assert any("speedup[parallel_campaign]" in f for f in failures)
        # On a throttled machine the same 1.5x clears the scaled gate.
        parallel.extra = {"measured_parallelism": 1.2}
        assert check_report(current, PerfReport(quick=False)) == []

    def test_parallel_campaign_gate_absent_without_result(self):
        # Speedup recorded but the parallel leg wasn't run this time:
        # no probe, no gate.
        current = PerfReport(quick=False, speedups={"parallel_campaign": 0.1})
        assert check_report(current, PerfReport(quick=False)) == []

    def test_execution_accounting_round_trips(self, tmp_path):
        report = PerfReport(
            quick=True,
            results={"a": _result("a")},
            execution={"jobs": 4, "shards": 2, "parallel_speedup": 1.3},
        )
        path = tmp_path / "bench.json"
        report.write(path)
        loaded = load_report(path)
        assert loaded.execution == {
            "jobs": 4, "shards": 2, "parallel_speedup": 1.3,
        }
        # Execution accounting is machine fact, never a gate input.
        assert check_report(loaded, report) == []


class TestPopSampler:
    def test_subsystem_attribution(self):
        assert subsystem_of(Simulator.step) == "repro.sim"
        # Non-repro callables bill to their top-level module.
        probe = lambda: None  # noqa: E731
        assert subsystem_of(probe) == probe.__module__.split(".")[0]
        assert subsystem_of(int) == "builtins"

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            PopSampler(every=0)

    def test_sampler_restores_pop_and_is_not_reentrant(self):
        original = Simulator._pop
        with PopSampler() as sampler:
            assert Simulator._pop is not original
            with pytest.raises(RuntimeError):
                sampler.__enter__()
        assert Simulator._pop is original

    def test_sampling_does_not_change_execution(self):
        def run(sampled):
            sim = Simulator()
            order = []

            def work(i):
                order.append((sim.now, i))
                if i < 100:
                    sim.schedule(10 + (i % 3), work, i + 1)

            sim.schedule(5, work, 0)
            if sampled:
                with PopSampler(every=1):
                    sim.run()
            else:
                sim.run()
            return order, sim.events_processed

        assert run(sampled=True) == run(sampled=False)

    def test_every_event_sampled_at_interval_one(self):
        sim = Simulator()
        for i in range(20):
            sim.schedule(i, lambda: None)
        with PopSampler(every=1) as sampler:
            sim.run()
        assert sampler.sampled_events == 20
        shares = sampler.shares()
        assert shares and abs(sum(shares.values()) - 1.0) < 1e-9


@pytest.mark.slow
class TestPerfSmoke:
    def test_quick_check_against_committed_baseline(self, capsys):
        """The tier-1 smoke: a real --check --quick run must pass against
        the committed BENCH_perf.json (exact digest comparison; generous
        rate tolerance for machine variance)."""
        assert default_bench_path().exists(), (
            "benchmarks/BENCH_perf.json missing; regenerate with "
            "`python -m repro perf`"
        )
        exit_code = perf_main(["--check", "--quick", "--tolerance", "0.2"])
        output = capsys.readouterr().out
        assert exit_code == 0, f"perf check failed:\n{output}"
        assert "perf check passed" in output
