"""Tests for QAM modulation and LLR demodulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.modulation import (
    Modulation,
    demodulate_llr,
    hard_decision,
    modulate,
)


ALL_MODULATIONS = [
    Modulation.BPSK,
    Modulation.QPSK,
    Modulation.QAM16,
    Modulation.QAM64,
]


class TestModulation:
    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_unit_average_energy(self, modulation):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 6000 * modulation.bits_per_symbol // 6, dtype=np.uint8)
        bits = bits[: len(bits) - len(bits) % modulation.bits_per_symbol]
        symbols = modulate(bits, modulation)
        energy = float(np.mean(np.abs(symbols) ** 2))
        assert energy == pytest.approx(1.0, abs=0.05)

    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_symbol_count(self, modulation):
        bits = np.zeros(modulation.bits_per_symbol * 10, dtype=np.uint8)
        assert len(modulate(bits, modulation)) == 10

    def test_bad_bit_count_rejected(self):
        with pytest.raises(ValueError):
            modulate(np.zeros(5, dtype=np.uint8), Modulation.QAM16)

    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_distinct_bit_groups_map_to_distinct_symbols(self, modulation):
        bps = modulation.bits_per_symbol
        labels = np.arange(1 << bps)
        bits = ((labels[:, None] >> np.arange(bps - 1, -1, -1)) & 1).astype(np.uint8)
        symbols = modulate(bits.ravel(), modulation)
        assert len(set(np.round(symbols, 9))) == 1 << bps

    @pytest.mark.parametrize("modulation", [Modulation.QAM16, Modulation.QAM64])
    def test_gray_mapping_adjacent_symbols_differ_by_one_bit(self, modulation):
        """Neighbouring constellation points on one axis differ in one bit,
        the defining Gray property that keeps near-threshold errors cheap."""
        bps = modulation.bits_per_symbol
        labels = np.arange(1 << bps)
        bits = ((labels[:, None] >> np.arange(bps - 1, -1, -1)) & 1).astype(np.uint8)
        symbols = modulate(bits.ravel(), modulation)
        by_point = {}
        for label, symbol in zip(labels, symbols):
            by_point[complex(np.round(symbol, 9))] = label
        points = sorted(by_point, key=lambda p: (p.imag, p.real))
        # Compare horizontally adjacent points within each row.
        rows = {}
        for p in points:
            rows.setdefault(round(p.imag, 9), []).append(p)
        for row in rows.values():
            row.sort(key=lambda p: p.real)
            for left, right in zip(row, row[1:]):
                diff = by_point[left] ^ by_point[right]
                assert bin(diff).count("1") == 1


class TestDemodulation:
    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_noiseless_hard_decision_roundtrip(self, modulation):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, modulation.bits_per_symbol * 64, dtype=np.uint8)
        symbols = modulate(bits, modulation)
        llrs = demodulate_llr(symbols, modulation, noise_var=0.01)
        assert np.array_equal(hard_decision(llrs), bits)

    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_llr_count_matches_bits(self, modulation):
        bits = np.zeros(modulation.bits_per_symbol * 7, dtype=np.uint8)
        symbols = modulate(bits, modulation)
        assert len(demodulate_llr(symbols, modulation, 0.1)) == len(bits)

    def test_llr_magnitude_scales_with_noise_confidence(self):
        bits = np.array([0, 0, 1, 1], dtype=np.uint8)
        symbols = modulate(bits, Modulation.QPSK)
        confident = demodulate_llr(symbols, Modulation.QPSK, noise_var=0.01)
        vague = demodulate_llr(symbols, Modulation.QPSK, noise_var=1.0)
        assert np.all(np.abs(confident) > np.abs(vague))

    def test_llr_sign_convention_positive_is_zero(self):
        bits = np.array([0, 1], dtype=np.uint8)
        symbols = modulate(bits, Modulation.QPSK)
        llrs = demodulate_llr(symbols, Modulation.QPSK, noise_var=0.1)
        assert llrs[0] > 0  # bit 0 transmitted
        assert llrs[1] < 0  # bit 1 transmitted

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property_qam64(self, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 6 * 32, dtype=np.uint8)
        symbols = modulate(bits, Modulation.QAM64)
        llrs = demodulate_llr(symbols, Modulation.QAM64, noise_var=0.001)
        assert np.array_equal(hard_decision(llrs), bits)

    def test_ber_improves_with_snr(self):
        rng = np.random.default_rng(2)
        from repro.phy.channel import AwgnChannel, ChannelRealization

        channel = AwgnChannel(rng)
        bits = rng.integers(0, 2, 4 * 3000, dtype=np.uint8)
        symbols = modulate(bits, Modulation.QAM16)

        def ber(snr_db):
            realization = ChannelRealization(snr_db)
            received = channel.apply(symbols, realization)
            llrs = demodulate_llr(received, Modulation.QAM16, realization.noise_var)
            return float(np.mean(hard_decision(llrs) != bits))

        assert ber(4.0) > ber(12.0)
        assert ber(12.0) > ber(20.0)
