"""Tests for the slot-wheel scheduling lane and the fleet-PHY backend.

Covers the PR's contract surface: the ``schedule_periodic`` API
(cancel / re-arm / no-op accounting), the heap-vs-wheel tie-order
differential under ``tie_shuffle_seed`` sweeps, bounded wheel memory
under cancel/re-arm storms, and the vectorized fleet-PHY backend's
byte-identity to the per-cell encode path (plus the legacy-engine fleet
digest equality the ``fleet_slot`` benchmark pair relies on).
"""

import hashlib
from types import SimpleNamespace

import numpy as np
import pytest

from repro.sim.engine import SimulationError, Simulator

#: Seed sweep for the tie-order differential: FIFO plus shuffled ties.
TIE_SEEDS = (None, 1, 2, 7, 20260)


def _sequence_digest(log):
    return hashlib.sha256(repr(log).encode("ascii")).hexdigest()


class TestSchedulePeriodicApi:
    def test_fires_every_period(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(100, lambda: times.append(sim.now))
        sim.run_for(550)
        assert times == [100, 200, 300, 400, 500]

    def test_start_offset_shifts_first_occurrence(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(100, lambda: times.append(sim.now), start_offset=30)
        sim.run_for(350)
        assert times == [30, 130, 230, 330]

    def test_first_at_pins_first_occurrence(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        times = []
        sim.schedule_periodic(100, lambda: times.append(sim.now), first_at=45)
        sim.run_for(300)
        assert times == [45, 145, 245]

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_periodic(0, lambda: None)

    def test_first_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_periodic(10, lambda: None, first_at=50)

    def test_cancel_stops_future_occurrences(self):
        sim = Simulator()
        times = []
        handle = sim.schedule_periodic(100, lambda: times.append(sim.now))
        sim.run_for(250)
        handle.cancel()
        assert not handle.pending
        sim.run_for(500)
        assert times == [100, 200]

    def test_re_arm_on_live_handle_rejected(self):
        sim = Simulator()
        handle = sim.schedule_periodic(100, lambda: None)
        with pytest.raises(SimulationError):
            handle.re_arm()

    def test_cancel_then_re_arm_resumes(self):
        sim = Simulator()
        times = []
        handle = sim.schedule_periodic(100, lambda: times.append(sim.now))
        sim.run_for(250)
        handle.cancel()
        sim.run_for(250)  # now = 500
        handle.re_arm(start_offset=50)
        sim.run_for(300)
        assert times == [100, 200, 550, 650, 750]

    def test_pending_events_includes_wheel_occurrences(self):
        sim = Simulator()
        sim.schedule(500, lambda: None)
        sim.schedule_periodic(100, lambda: None)
        assert sim.pending_events == 2
        assert sim.wheel_pending == 1

    def test_repeated_periodic_cancel_counts_as_noop(self):
        sim = Simulator()
        handle = sim.schedule_periodic(100, lambda: None)
        handle.cancel()
        assert sim.cancel_noops == 0
        handle.cancel()
        handle.cancel()
        assert sim.cancel_noops == 2

    def test_cancel_after_fire_counts_as_noop(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        sim.run()
        assert sim.cancel_noops == 0
        handle.cancel()
        assert sim.cancel_noops == 1
        handle.cancel()
        assert sim.cancel_noops == 2


def _make_self_rescheduler(sim, period, label, log):
    """The pre-wheel periodic idiom: re-arm through the heap first (the
    draw point the wheel lane reproduces), then do the tick's work."""

    def tick():
        sim.schedule(period, tick)
        log.append((label, sim.now))
    return tick


def _heap_collisions(sim, log, lanes, period, rounds):
    """One-shot heap events landing exactly on wheel occurrence times, so
    every pop must merge the two lanes under (time, tie, seq)."""
    for r in range(1, rounds + 1):
        for k in range(lanes):
            sim.at(r * period, log.append, (f"h{k}", r * period))


class TestTieOrderDifferential:
    """Same program through the wheel and through heap self-rescheduling
    must produce identical firing sequences — for FIFO ties and for every
    ``tie_shuffle_seed``, with same-instant heap/wheel collisions."""

    LANES = 4
    PERIOD = 100
    ROUNDS = 10

    def _run_wheel(self, seed):
        sim = Simulator(tie_shuffle_seed=seed)
        log = []
        for i in range(self.LANES):
            sim.schedule_periodic(
                self.PERIOD,
                lambda i=i: log.append((f"w{i}", sim.now)),
                label=f"w{i}",
            )
        _heap_collisions(sim, log, self.LANES, self.PERIOD, self.ROUNDS)
        sim.run_for(self.PERIOD * self.ROUNDS)
        return log

    def _run_heap(self, seed):
        sim = Simulator(tie_shuffle_seed=seed)
        log = []
        for i in range(self.LANES):
            tick = _make_self_rescheduler(sim, self.PERIOD, f"w{i}", log)
            sim.schedule(self.PERIOD, tick)
        _heap_collisions(sim, log, self.LANES, self.PERIOD, self.ROUNDS)
        sim.run_for(self.PERIOD * self.ROUNDS)
        return log

    @pytest.mark.parametrize("seed", TIE_SEEDS)
    def test_wheel_matches_heap_self_reschedule(self, seed):
        wheel_log = self._run_wheel(seed)
        heap_log = self._run_heap(seed)
        assert len(wheel_log) == self.LANES * self.ROUNDS * 2
        assert _sequence_digest(wheel_log) == _sequence_digest(heap_log)
        assert wheel_log == heap_log

    def test_shuffled_orders_differ_from_fifo_somewhere(self):
        # The sweep is only meaningful if the shuffle actually permutes
        # same-instant events for at least one seed.
        fifo = self._run_wheel(None)
        assert any(self._run_wheel(seed) != fifo for seed in TIE_SEEDS[1:])

    @pytest.mark.parametrize("seed", TIE_SEEDS[1:])
    def test_same_seed_is_reproducible(self, seed):
        assert self._run_wheel(seed) == self._run_wheel(seed)

    def test_fifo_matches_legacy_engine(self):
        from repro.perf.legacy import LegacySimulator

        sim = LegacySimulator()
        log = []
        for i in range(self.LANES):
            sim.schedule_periodic(
                self.PERIOD,
                lambda i=i: log.append((f"w{i}", sim.now)),
                label=f"w{i}",
            )
        _heap_collisions(sim, log, self.LANES, self.PERIOD, self.ROUNDS)
        sim.run_for(self.PERIOD * self.ROUNDS)
        assert log == self._run_wheel(None)


class TestWheelChurnBounded:
    def test_cancel_re_arm_storm_keeps_wheel_bounded(self):
        """A crash/restart storm must not grow the wheel: stale entries
        are swept by compaction once they outnumber live ones."""
        sim = Simulator(compaction_threshold=8)
        lanes = 4
        handles = [
            sim.schedule_periodic(100, lambda: None, label=f"lane{i}")
            for i in range(lanes)
        ]
        for _ in range(200):
            sim.run_for(250)
            # Several bounce cycles per round: each cancel strands the
            # just-armed occurrence as wheel garbage.
            for _ in range(5):
                for handle in handles:
                    handle.cancel()
                    handle.re_arm(start_offset=100)
        assert sim.wheel_pending == lanes
        # Total stored entries (live + not-yet-swept garbage) stay within
        # the compaction threshold of the live population, forever.
        assert sim.wheel_entries <= lanes + sim.compaction_threshold
        assert sim.wheel_compactions > 0

    def test_cancelled_occurrence_never_fires_even_same_instant(self):
        sim = Simulator()
        fired = []
        holder = []

        def killer():
            holder[0].cancel()

        # Killer is scheduled first (lower seq), so at t=100 it runs
        # before the lane's occurrence at the same instant — the epoch
        # bump must invalidate the already-queued occurrence.
        sim.at(100, killer)
        holder.append(sim.schedule_periodic(100, lambda: fired.append(sim.now)))
        sim.run_for(400)
        assert fired == []
        assert sim.wheel_pending == 0


def _backend_fixture():
    from repro.perf.benchmarks import CORPUS_SEED, _phy_slot_corpus
    from repro.phy.codec import PhyCodec

    # 8 blocks: the corpus assigns ue_id = 1 + (i % 8), and the gather
    # keys captures by (slot, ue_id), so block count must not exceed the
    # distinct-UE count.
    blocks = _phy_slot_corpus(count=8)
    codec = PhyCodec(np.random.default_rng(CORPUS_SEED))
    sim = Simulator()
    phy = SimpleNamespace(sim=sim, codec=codec)
    return sim, phy, blocks


class TestFleetPhyBackend:
    def test_supplementary_path_byte_identical(self):
        """Unregistered demand (no gather plan) must still return exactly
        the per-cell encode output."""
        from repro.fleet.phy_backend import FleetPhyBackend

        sim, phy, blocks = _backend_fixture()
        backend = FleetPhyBackend()
        got = backend.encode_blocks(phy, blocks)
        want = phy.codec.encode_blocks(blocks)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert np.array_equal(g, w)
        assert backend.stats.supplementary_blocks == len(blocks)

    def test_gathered_path_byte_identical_and_batched(self):
        from repro.fleet.phy_backend import FleetPhyBackend

        sim, phy, blocks = _backend_fixture()
        backend = FleetPhyBackend()
        abs_slot = 7
        pdus = [SimpleNamespace(ue_id=block.ue_id) for block in blocks]
        # Two "cells" sharing the same planned completion instant; their
        # captures alias the same transport blocks, as fleet islands with
        # identical MAC schedules do.
        cell = SimpleNamespace(
            captures={
                (abs_slot, block.ue_id): SimpleNamespace(block=block)
                for block in blocks
            }
        )
        sim.schedule(50, lambda: None)
        sim.run()
        backend.register(sim.now, phy, cell, abs_slot, pdus)
        backend.register(sim.now, phy, cell, abs_slot, pdus)
        got = backend.encode_blocks(phy, blocks)
        want = phy.codec.encode_blocks(blocks)
        for g, w in zip(got, want):
            assert np.array_equal(g, w)
        assert backend.stats.supplementary_blocks == 0
        assert backend.stats.gather_passes == 1
        # Cross-plan dedup: the aliased plan adds no extra encodes.
        unique = {(block.tb_id, block.modulation) for block in blocks}
        assert backend.stats.blocks_encoded == len(unique)


@pytest.mark.slow
class TestFleetBackendDifferential:
    CELLS = 6
    TRACERS = 3
    SEED = 11
    #: Long enough that tracer UEs produce uplink captures (the encode
    #: path the vectorized backend batches).
    RUN_NS = 60_000_000

    def _digest(self, phy_backend, sim=None):
        from repro.fleet.composer import FleetConfig, build_fleet, fleet_digest

        harness = build_fleet(
            FleetConfig(
                seed=self.SEED,
                num_cells=self.CELLS,
                tracer_cells=self.TRACERS,
                phy_backend=phy_backend,
            ),
            sim=sim,
        )
        harness.run_for(self.RUN_NS)
        return fleet_digest(harness), harness

    def test_vectorized_backend_digest_identical_to_per_cell(self):
        per_cell, _ = self._digest("per-cell")
        vectorized, harness = self._digest("vectorized")
        assert vectorized == per_cell
        stats = harness.phy_backend.stats
        assert stats.blocks_encoded > 0
        assert stats.cache_hits > 0

    def test_legacy_engine_fleet_digest_matches_live(self):
        from repro.perf.legacy import LegacySimulator

        live, live_harness = self._digest("per-cell")
        legacy, legacy_harness = self._digest("per-cell", sim=LegacySimulator())
        assert legacy == live
        assert (
            legacy_harness.sim.events_processed
            == live_harness.sim.events_processed
        )

    def test_unknown_backend_rejected(self):
        from repro.fleet.composer import FleetConfig, build_fleet

        with pytest.raises(ValueError):
            build_fleet(FleetConfig(phy_backend="gpu"))
