"""Tests for the MAC scheduler (L2)."""

import pytest

from repro.fapi.channels import ShmChannel
from repro.fapi.messages import (
    CrcIndication,
    CrcResult,
    DlTtiRequest,
    HarqFeedback,
    TxDataRequest,
    UciIndication,
    UlTtiRequest,
)
from repro.l2.mac import L2Process, MacConfig, McsEntry, McsTable
from repro.l2.rlc import RlcBearerConfig, RlcMode
from repro.phy.modulation import Modulation
from repro.phy.numerology import Numerology, SlotClock, SlotType, TddPattern
from repro.sim.engine import Simulator
from repro.sim.units import MS


class FapiSink:
    def __init__(self):
        self.messages = []

    def receive_fapi(self, message, channel):
        self.messages.append(message)

    def of_type(self, cls):
        return [m for m in self.messages if isinstance(m, cls)]


def build_l2(sim, **config_kwargs):
    l2 = L2Process(
        sim,
        slot_clock=SlotClock(Numerology()),
        tdd=TddPattern(),
        numerology=Numerology(),
        config=MacConfig(**config_kwargs),
    )
    sink = FapiSink()
    l2.set_fapi_channel(ShmChannel(sim, sink, latency_ns=0))
    return l2, sink


def bearers():
    return [RlcBearerConfig(bearer_id=1, mode=RlcMode.UM)]


class TestMcsTable:
    def test_thresholds(self):
        table = McsTable()
        assert table.select(0.0).modulation is Modulation.QPSK
        assert table.select(8.0).modulation is Modulation.QAM16
        assert table.select(20.0).modulation is Modulation.QAM64

    def test_custom_entries_sorted(self):
        table = McsTable([
            McsEntry(10.0, Modulation.QAM64, 0.5),
            McsEntry(-100.0, Modulation.QPSK, 0.5),
        ])
        assert table.select(5.0).modulation is Modulation.QPSK


class TestTtiGeneration:
    def test_tti_requests_every_slot_for_both_directions(self):
        """FAPI contract: UL_TTI and DL_TTI in every slot, null or not."""
        sim = Simulator()
        l2, sink = build_l2(sim)
        l2.start()
        sim.run_until(10 * MS)  # 20 slots.
        ul = sink.of_type(UlTtiRequest)
        dl = sink.of_type(DlTtiRequest)
        assert len(ul) >= 18
        assert len(dl) >= 18
        ul_slots = [m.slot for m in ul]
        assert ul_slots == sorted(ul_slots)
        assert len(set(ul_slots)) == len(ul_slots)

    def test_schedule_ahead_depth(self):
        """Each request is generated schedule_ahead_slots before air time
        (Fig 7's FAPI transfer budget)."""
        sim = Simulator()
        l2, sink = build_l2(sim)
        generated_at = {}
        original = l2.fapi_tx.send

        def tap(message):
            generated_at.setdefault(message.message_id, sim.now)
            original(message)

        l2.fapi_tx.send = tap
        l2.start()
        sim.run_until(5 * MS)
        clock = SlotClock(Numerology())
        for message in sink.of_type(UlTtiRequest):
            generation_slot = clock.slot_at(generated_at[message.message_id])
            assert message.slot - generation_slot == l2.config.schedule_ahead_slots

    def test_idle_cell_sends_null_requests(self):
        sim = Simulator()
        l2, sink = build_l2(sim)
        l2.start()
        sim.run_until(5 * MS)
        assert all(m.is_null for m in sink.of_type(DlTtiRequest))

    def test_ul_pdus_only_in_uplink_slots(self):
        sim = Simulator()
        l2, sink = build_l2(sim, ul_poll_interval_slots=1)
        l2.register_ue(1, bearers(), snr_db=15.0)
        l2.start()
        sim.run_until(20 * MS)
        tdd = TddPattern()
        for message in sink.of_type(UlTtiRequest):
            if message.pdus:
                assert tdd.slot_type(message.slot) is SlotType.UPLINK


class TestDownlinkScheduling:
    def test_dl_data_scheduled_with_tx_data(self):
        sim = Simulator()
        l2, sink = build_l2(sim)
        l2.register_ue(1, bearers(), snr_db=15.0)
        l2.start()
        l2.send_downlink(1, 1, "packet", 500)
        sim.run_until(6 * MS)
        dl_with_work = [m for m in sink.of_type(DlTtiRequest) if m.pdus]
        tx_data = sink.of_type(TxDataRequest)
        assert dl_with_work
        assert tx_data
        pdu = dl_with_work[0].pdus[0]
        assert pdu.ue_id == 1
        assert tx_data[0].payloads[0][0] == pdu.tb_id

    def test_mcs_follows_reported_snr(self):
        sim = Simulator()
        l2, sink = build_l2(sim)
        l2.register_ue(1, bearers(), snr_db=20.0)
        l2.start()
        l2.send_downlink(1, 1, "x", 100)
        sim.run_until(6 * MS)
        pdu = next(m for m in sink.of_type(DlTtiRequest) if m.pdus).pdus[0]
        assert pdu.modulation is Modulation.QAM64

    def test_nack_triggers_retransmission_same_tb(self):
        sim = Simulator()
        l2, sink = build_l2(sim)
        l2.register_ue(1, bearers(), snr_db=15.0)
        l2.start()
        l2.send_downlink(1, 1, "x", 100)
        sim.run_until(6 * MS)
        pdu = next(m for m in sink.of_type(DlTtiRequest) if m.pdus).pdus[0]
        l2.receive_fapi(
            UciIndication(
                cell_id=0, slot=pdu.tb_id,
                feedback=[HarqFeedback(1, pdu.harq_process, pdu.tb_id, ack=False)],
            ),
            channel=None,
        )
        sim.run_until(12 * MS)
        retx = [
            m for m in sink.of_type(DlTtiRequest)
            if m.pdus and not m.pdus[0].new_data
        ]
        assert retx
        assert retx[0].pdus[0].tb_id == pdu.tb_id
        assert l2.stats.dl_tbs_retransmitted >= 1

    def test_ack_frees_harq_process(self):
        sim = Simulator()
        l2, sink = build_l2(sim)
        ctx = l2.register_ue(1, bearers(), snr_db=15.0)
        l2.start()
        l2.send_downlink(1, 1, "x", 100)
        sim.run_until(6 * MS)
        pdu = next(m for m in sink.of_type(DlTtiRequest) if m.pdus).pdus[0]
        l2.receive_fapi(
            UciIndication(
                cell_id=0, slot=0,
                feedback=[HarqFeedback(1, pdu.harq_process, pdu.tb_id, ack=True)],
            ),
            channel=None,
        )
        assert pdu.harq_process not in ctx.dl_outstanding

    def test_dtx_timeout_retransmits(self):
        """No feedback at all (PHY dead) must still lead to
        retransmission — the self-healing behaviour failover relies on."""
        sim = Simulator()
        l2, sink = build_l2(sim, harq_timeout_slots=6)
        l2.register_ue(1, bearers(), snr_db=15.0)
        l2.start()
        l2.send_downlink(1, 1, "x", 100)
        sim.run_until(20 * MS)
        assert l2.stats.dl_tbs_retransmitted >= 1


class TestUplinkScheduling:
    def test_no_grants_without_bsr_or_poll(self):
        sim = Simulator()
        l2, sink = build_l2(sim, ul_poll_interval_slots=10_000)
        l2.register_ue(1, bearers(), snr_db=15.0)
        l2.start()
        sim.run_until(20 * MS)
        assert l2.stats.ul_grants_issued <= 1

    def test_bsr_attracts_grants(self):
        sim = Simulator()
        l2, sink = build_l2(sim, ul_poll_interval_slots=10_000)
        ctx = l2.register_ue(1, bearers(), snr_db=15.0)
        l2.start()
        sim.run_until(2 * MS)
        l2.receive_fapi(
            UciIndication(cell_id=0, slot=0, bsr_reports=[(1, 50_000)]),
            channel=None,
        )
        before = l2.stats.ul_grants_issued
        sim.run_until(10 * MS)
        assert l2.stats.ul_grants_issued > before

    def test_poll_grants_for_idle_ue(self):
        sim = Simulator()
        l2, sink = build_l2(sim, ul_poll_interval_slots=10)
        l2.register_ue(1, bearers(), snr_db=15.0)
        l2.start()
        sim.run_until(50 * MS)
        assert 2 <= l2.stats.ul_grants_issued <= 25

    def test_crc_failure_grants_retransmission(self):
        sim = Simulator()
        l2, sink = build_l2(sim, ul_poll_interval_slots=5)
        l2.register_ue(1, bearers(), snr_db=15.0)
        l2.start()
        sim.run_until(10 * MS)
        granted = [m for m in sink.of_type(UlTtiRequest) if m.pdus]
        assert granted
        pdu = granted[0].pdus[0]
        l2.receive_fapi(
            CrcIndication(
                cell_id=0, slot=pdu.tb_id,
                results=[CrcResult(1, pdu.harq_process, pdu.tb_id, False, 12.0)],
            ),
            channel=None,
        )
        sim.run_until(20 * MS)
        retx = [
            m for m in sink.of_type(UlTtiRequest)
            if m.pdus and not m.pdus[0].new_data
        ]
        assert retx
        assert retx[0].pdus[0].tb_id == pdu.tb_id

    def test_harq_gives_up_after_max_retx(self):
        sim = Simulator()
        l2, sink = build_l2(sim, ul_poll_interval_slots=5, max_harq_retx=2)
        l2.register_ue(1, bearers(), snr_db=15.0)
        l2.start()

        def nack_everything():
            for message in sink.of_type(UlTtiRequest):
                for pdu in message.pdus:
                    l2.receive_fapi(
                        CrcIndication(
                            cell_id=0, slot=message.slot,
                            results=[CrcResult(1, pdu.harq_process, pdu.tb_id,
                                               False, 12.0)],
                        ),
                        channel=None,
                    )
            sink.messages.clear()

        for _ in range(20):
            sim.run_for(5 * MS)
            nack_everything()
        assert l2.stats.ul_harq_failures >= 1

    def test_deregistered_ue_not_scheduled(self):
        sim = Simulator()
        l2, sink = build_l2(sim, ul_poll_interval_slots=1)
        l2.register_ue(1, bearers(), snr_db=15.0)
        l2.deregister_ue(1)
        l2.start()
        sim.run_until(10 * MS)
        assert all(not m.pdus for m in sink.of_type(UlTtiRequest))
