"""Deterministic fuzz round-trips for the FAPI and eCPRI codecs.

The perf pass gave both codecs *fast paths* (type-keyed dispatch,
positional PDU construction, memoized header packing) while keeping the
original implementations as normative *reference paths*. These tests
drive ~1k randomized messages — generated from reserved
:class:`~repro.sim.rng.RngRegistry` streams, so the corpus is identical
on every run and every machine — through both paths and require:

* encode -> decode -> encode is byte-identical (the codec is a bijection
  on its wire image);
* the fast encoder produces byte-identical output to the reference
  encoder, and the fast decoder's result re-encodes to the same bytes as
  the reference decoder's (field-level equivalence without comparing
  ``message_id`` bookkeeping);
* eCPRI's ``parse_timing_fields`` (the P4-parser arithmetic) agrees with
  the full header decode.
"""

import pytest

from repro.fapi import codec
from repro.fapi import messages as m
from repro.fronthaul import ecpri
from repro.perf.benchmarks import build_fapi_corpus
from repro.phy.numerology import SlotAddress
from repro.sim.rng import RngRegistry

#: Seed reserved for codec fuzzing (distinct from the benchmark corpus).
FUZZ_SEED = 77_2026


@pytest.fixture(scope="module")
def fapi_corpus():
    return build_fapi_corpus(count=1_000, seed=FUZZ_SEED)


class TestFapiCodecFuzz:
    def test_encode_decode_encode_is_byte_identical(self, fapi_corpus):
        for message in fapi_corpus:
            data = codec.encode_message(message)
            decoded = codec.decode_message(data)
            assert codec.encode_message(decoded) == data

    def test_fast_encoder_matches_reference_encoder(self, fapi_corpus):
        for message in fapi_corpus:
            assert codec.encode_message(message) == codec.encode_message_reference(
                message
            )

    def test_fast_decoder_matches_reference_decoder(self, fapi_corpus):
        for message in fapi_corpus:
            data = codec.encode_message(message)
            fast = codec.decode_message(data)
            reference = codec.decode_message_reference(data)
            assert type(fast) is type(reference)
            assert codec.encode_message(fast) == codec.encode_message_reference(
                reference
            )

    def test_reference_round_trip_is_byte_identical(self, fapi_corpus):
        for message in fapi_corpus:
            data = codec.encode_message_reference(message)
            decoded = codec.decode_message_reference(data)
            assert codec.encode_message_reference(decoded) == data

    def test_wire_size_matches_encoding_for_bytes_payloads(self, fapi_corpus):
        # The whole corpus uses bytes payloads, where the declared wire
        # size must equal the actual encoding length.
        for message in fapi_corpus:
            assert codec.wire_size(message) == len(codec.encode_message(message))

    def test_decoded_tti_pdus_preserve_fields(self, fapi_corpus):
        for message in fapi_corpus:
            if not isinstance(message, (m.UlTtiRequest, m.DlTtiRequest)):
                continue
            decoded = codec.decode_message(codec.encode_message(message))
            assert len(decoded.pdus) == len(message.pdus)
            for original, round_tripped in zip(message.pdus, decoded.pdus):
                assert round_tripped.ue_id == original.ue_id
                assert round_tripped.harq_process == original.harq_process
                assert round_tripped.modulation is original.modulation
                assert round_tripped.prbs == original.prbs
                assert round_tripped.new_data == original.new_data
                assert round_tripped.tb_id == original.tb_id
                assert round_tripped.tb_bytes == original.tb_bytes
                assert round_tripped.retx_index == original.retx_index


def _random_headers(count: int = 1_000):
    rng = RngRegistry(FUZZ_SEED).stream("fuzz.ecpri_headers")
    for _ in range(count):
        yield dict(
            message_type=(
                ecpri.ECPRI_TYPE_IQ_DATA
                if rng.integers(0, 2) else ecpri.ECPRI_TYPE_RT_CONTROL
            ),
            payload_bytes=int(rng.integers(0, 65_536)),
            eaxc_id=int(rng.integers(0, 65_536)),
            sequence=int(rng.integers(0, 256)),
            address=SlotAddress(
                frame=int(rng.integers(0, 1024)),
                subframe=int(rng.integers(0, 10)),
                slot=int(rng.integers(0, 64)),
            ),
            symbol=int(rng.integers(0, 14)),
            section_type=(
                ecpri.SECTION_TYPE_UL if rng.integers(0, 2) else ecpri.SECTION_TYPE_DL
            ),
        )


class TestEcpriHeaderFuzz:
    def test_encode_decode_encode_is_byte_identical(self):
        for fields in _random_headers():
            data = ecpri.encode_header(**fields)
            header = ecpri.decode_header(data)
            assert (
                ecpri.encode_header(
                    header.message_type,
                    header.payload_bytes,
                    header.eaxc_id,
                    header.sequence,
                    header.address,
                    header.symbol,
                    header.section_type,
                )
                == data
            )

    def test_decode_recovers_all_fields(self):
        for fields in _random_headers():
            header = ecpri.decode_header(ecpri.encode_header(**fields))
            assert header.message_type == fields["message_type"]
            assert header.payload_bytes == fields["payload_bytes"]
            assert header.eaxc_id == fields["eaxc_id"]
            assert header.sequence == fields["sequence"]
            assert header.address == fields["address"]
            assert header.symbol == fields["symbol"]
            assert header.section_type == fields["section_type"]

    def test_timing_field_fast_parse_agrees_with_full_decode(self):
        for fields in _random_headers():
            data = ecpri.encode_header(**fields)
            header = ecpri.decode_header(data)
            assert ecpri.parse_timing_fields(data) == (
                header.address.frame,
                header.address.subframe,
                header.address.slot,
            )

    def test_parse_handles_trailing_payload_and_bytearray(self):
        fields = next(iter(_random_headers(1)))
        data = ecpri.encode_header(**fields)
        padded = bytearray(data + b"\x5a" * 128)
        assert ecpri.decode_header(padded) == ecpri.decode_header(data)
        assert ecpri.parse_timing_fields(padded) == ecpri.parse_timing_fields(data)

    def test_memoized_decode_is_stable(self):
        fields = next(iter(_random_headers(1)))
        data = ecpri.encode_header(**fields)
        assert ecpri.decode_header(data) == ecpri.decode_header(bytes(data))

    def test_invalid_fields_still_rejected(self):
        # lru_cache never caches exceptions; validation fires every call.
        for _ in range(2):
            with pytest.raises(ecpri.EcpriCodecError):
                ecpri.encode_header(
                    ecpri.ECPRI_TYPE_IQ_DATA, 0, 0, 0,
                    SlotAddress(frame=1024, subframe=0, slot=0),
                )
            with pytest.raises(ecpri.EcpriCodecError):
                ecpri.decode_header(b"\x00" * ecpri.HEADER_BYTES)
