"""Tests for the PTP clock model — and the §5.1 timing argument."""

import numpy as np
import pytest

from repro.net.ptp import PtpClock, PtpConfig
from repro.sim.units import MS, SECOND, US


class TestDisciplinedClock:
    def test_offset_stays_sub_microsecond(self):
        clock = PtpClock(rng=np.random.default_rng(0), disciplined=True)
        worst = max(
            abs(clock.offset_ns(t))
            for t in range(0, 60 * SECOND, SECOND // 7)
        )
        assert worst < 1_000  # < 1 us: fine against 500 us slots.

    def test_reading_tracks_true_time(self):
        clock = PtpClock(rng=np.random.default_rng(1))
        t = 10 * SECOND
        assert abs(clock.read(t) - t) < 2_000

    def test_syncs_applied_at_interval(self):
        config = PtpConfig(sync_interval_ns=SECOND)
        clock = PtpClock(config, rng=np.random.default_rng(2))
        clock.offset_ns(10 * SECOND)
        assert clock.syncs_applied == 10

    def test_two_disciplined_clocks_agree_on_slots(self):
        """RU and PHY, both PTP-disciplined, see the same slot boundary
        to within microseconds — slot-synchronized operation works."""
        a = PtpClock(rng=np.random.default_rng(3))
        b = PtpClock(rng=np.random.default_rng(4))
        for t in range(SECOND, 20 * SECOND, 3 * SECOND):
            disagreement = abs(a.read(t) - b.read(t))
            assert disagreement < 2_000


class TestFreeRunningClock:
    def test_drift_accumulates_without_discipline(self):
        clock = PtpClock(rng=np.random.default_rng(5), disciplined=False)
        early = abs(clock.offset_ns(SECOND))
        late = abs(clock.offset_ns(3600 * SECOND))
        assert late > 100 * max(early, 1.0)

    def test_undisciplined_clock_cannot_name_a_slot(self):
        """§5.1's argument: the switch data plane has no synchronized
        clock; within an hour a free-running oscillator is off by more
        than many whole slots, so 'migrate at time T' is meaningless —
        only the packets' own slot fields identify TTIs."""
        clock = PtpClock(
            PtpConfig(drift_ppm=8.0),
            rng=np.random.default_rng(6),
            disciplined=False,
        )
        offset_after_hour = abs(clock.offset_ns(3600 * SECOND))
        assert offset_after_hour > 2 * 500 * US  # Several slots wrong.

    def test_drift_is_stable_per_instance(self):
        clock = PtpClock(rng=np.random.default_rng(7), disciplined=False)
        assert clock.drift_ppm == clock.drift_ppm
        # Offset grows linearly with elapsed time.
        o1 = clock.offset_ns(100 * SECOND)
        o2 = clock.offset_ns(200 * SECOND)
        assert o2 == pytest.approx(2 * o1, rel=0.01)


class TestSlotBoundaryError:
    def test_disciplined_error_negligible(self):
        clock = PtpClock(rng=np.random.default_rng(8))
        assert clock.slot_boundary_error_ns(5 * SECOND) < 2_000

    def test_distinct_seeds_distinct_drifts(self):
        drifts = {
            PtpClock(rng=np.random.default_rng(seed), disciplined=False).drift_ppm
            for seed in range(8)
        }
        assert len(drifts) > 4
