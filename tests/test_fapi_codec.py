"""Round-trip and property tests for the FAPI binary codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fapi import messages as m
from repro.fapi.codec import (
    FapiCodecError,
    decode_message,
    encode_message,
    encoded_size,
    wire_size,
)
from repro.phy.modulation import Modulation


def pdu_strategy(cls):
    return st.builds(
        cls,
        ue_id=st.integers(0, 65535),
        harq_process=st.integers(0, 255),
        modulation=st.sampled_from(list(Modulation)),
        prbs=st.integers(1, 273),
        new_data=st.booleans(),
        tb_id=st.integers(0, 2**40),
        tb_bytes=st.integers(0, 2**31 - 1),
        retx_index=st.integers(0, 3),
    )


class TestRoundTrips:
    def test_config_request(self):
        msg = m.ConfigRequest(
            cell_id=3, slot=17, num_prbs=273, numerology_mu=1,
            tdd_pattern="DDDSU", ru_id=9,
        )
        decoded = decode_message(encode_message(msg))
        assert isinstance(decoded, m.ConfigRequest)
        assert decoded.tdd_pattern == "DDDSU"
        assert decoded.num_prbs == 273
        assert decoded.ru_id == 9

    def test_start_stop_slot(self):
        for msg in (
            m.StartRequest(cell_id=1, slot=5),
            m.StopRequest(cell_id=1, slot=5),
            m.SlotIndication(cell_id=2, slot=99),
        ):
            decoded = decode_message(encode_message(msg))
            assert type(decoded) is type(msg)
            assert decoded.cell_id == msg.cell_id
            assert decoded.slot == msg.slot

    def test_error_indication_with_unicode(self):
        msg = m.ErrorIndication(cell_id=0, slot=1, error_code=7, detail="bad slot ⚠")
        decoded = decode_message(encode_message(msg))
        assert decoded.detail == "bad slot ⚠"

    def test_tx_data_blobs(self):
        msg = m.TxDataRequest(
            cell_id=0, slot=4, payloads=[(11, b"hello"), (12, b""), (13, b"\x00" * 100)]
        )
        decoded = decode_message(encode_message(msg))
        assert decoded.payloads == [(11, b"hello"), (12, b""), (13, b"\x00" * 100)]

    def test_rx_data(self):
        msg = m.RxDataIndication(
            cell_id=1, slot=8, payloads=[(5, 2, 900, b"data"), (6, 0, 901, b"x")]
        )
        decoded = decode_message(encode_message(msg))
        assert decoded.payloads == [(5, 2, 900, b"data"), (6, 0, 901, b"x")]

    def test_crc_indication(self):
        msg = m.CrcIndication(
            cell_id=0,
            slot=3,
            results=[
                m.CrcResult(ue_id=1, harq_process=2, tb_id=77, crc_ok=True,
                            measured_snr_db=14.5, retx_index=1),
            ],
        )
        decoded = decode_message(encode_message(msg))
        result = decoded.results[0]
        assert result.crc_ok
        assert result.measured_snr_db == pytest.approx(14.5, abs=0.01)

    def test_uci_indication_with_bsr(self):
        msg = m.UciIndication(
            cell_id=0,
            slot=6,
            feedback=[m.HarqFeedback(ue_id=3, harq_process=1, tb_id=55, ack=False)],
            bsr_reports=[(3, 120_000)],
        )
        decoded = decode_message(encode_message(msg))
        assert decoded.feedback[0].ack is False
        assert decoded.bsr_reports == [(3, 120_000)]

    @given(st.lists(pdu_strategy(m.PuschPdu), max_size=8), st.integers(0, 2**40))
    @settings(max_examples=50, deadline=None)
    def test_ul_tti_roundtrip_property(self, pdus, slot):
        msg = m.UlTtiRequest(cell_id=7, slot=slot, pdus=pdus)
        decoded = decode_message(encode_message(msg))
        assert len(decoded.pdus) == len(pdus)
        for original, recovered in zip(pdus, decoded.pdus):
            assert recovered.ue_id == original.ue_id
            assert recovered.modulation == original.modulation
            assert recovered.tb_id == original.tb_id
            assert recovered.new_data == original.new_data

    @given(st.lists(pdu_strategy(m.PdschPdu), max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_dl_tti_roundtrip_property(self, pdus):
        msg = m.DlTtiRequest(cell_id=2, slot=42, pdus=pdus)
        decoded = decode_message(encode_message(msg))
        assert len(decoded.pdus) == len(pdus)
        assert decoded.is_null == msg.is_null


class TestSizesAndErrors:
    def test_encoded_size_matches_encoding(self):
        msg = m.UlTtiRequest(cell_id=0, slot=1, pdus=[])
        assert encoded_size(msg) == len(encode_message(msg))

    def test_wire_size_matches_encoded_size_for_bytes_payloads(self):
        msg = m.TxDataRequest(cell_id=0, slot=1, payloads=[(1, b"abcd")])
        assert wire_size(msg) == encoded_size(msg)

    def test_wire_size_of_null_tti_is_small(self):
        """Null FAPI requests must be tiny — <1 MB/s total (§8.5)."""
        assert wire_size(m.null_ul_tti(0, 5)) < 32

    def test_truncated_header_rejected(self):
        with pytest.raises(FapiCodecError):
            decode_message(b"\x00\x01")

    def test_bad_magic_rejected(self):
        data = bytearray(encode_message(m.SlotIndication(cell_id=0, slot=0)))
        data[0] ^= 0xFF
        with pytest.raises(FapiCodecError):
            decode_message(bytes(data))

    def test_truncated_body_rejected(self):
        data = encode_message(
            m.TxDataRequest(cell_id=0, slot=1, payloads=[(1, b"abcdef")])
        )
        with pytest.raises(FapiCodecError):
            decode_message(data[:-3])


class TestNullHelpers:
    def test_null_requests_are_null(self):
        assert m.null_ul_tti(0, 1).is_null
        assert m.null_dl_tti(0, 1).is_null
        assert m.is_null_request(m.null_ul_tti(0, 1))

    def test_non_tti_messages_are_not_null(self):
        assert not m.is_null_request(m.SlotIndication(cell_id=0, slot=1))

    def test_populated_tti_is_not_null(self):
        pdu = m.PuschPdu(
            ue_id=1, harq_process=0, modulation=Modulation.QPSK,
            prbs=10, new_data=True, tb_id=1, tb_bytes=100,
        )
        assert not m.UlTtiRequest(cell_id=0, slot=1, pdus=[pdu]).is_null
