"""Digest-equivalence regression tests (tier-1).

The perf subsystem's contract is that optimizations are *behavior
invisible*: the canonical trace digest (``TraceRecorder.digest()``) of
every golden scenario must stay bit-identical across perf work. The
digests below were recorded from the pre-optimization engine/codec and
re-verified after the ``__slots__``/tuple-heap/compaction, codec
fast-path, memoized-formatting, and batched-RNG changes. Any future PR
that changes one of these values changed *behaviour*, not just speed —
either fix the regression or consciously re-golden with a written
justification in the PR.
"""

import pytest

from repro.perf.scenarios import DIGEST_SCENARIOS, scenario_digest

#: Full-cell scenario runs; excluded from the fast `-m "not slow"` split.
pytestmark = pytest.mark.slow

#: scenario name -> golden canonical-trace digest.
GOLDEN_DIGESTS = {
    "fig9": "154785d0fe3c3971df57539d73a178a2cbd0cae32da1f10d626c4b3fbc838b67",
    "fig10_smoke": "249e2939805ab23746011f7033962031bbf536b593c816e06f9e003388fa68dc",
    "chaos_cmd_drop": "49cc218e27d1e357ef767acbd22e49ed7d9880fa082c59f88f788c209a5fa63e",
    "chaos_crash_restart": "08283654b706462fcccbe6a9bb5d5c965663fe1353bc5b789aae696a2ff3d94f",
}


def test_golden_set_matches_scenario_catalog():
    assert set(GOLDEN_DIGESTS) == set(DIGEST_SCENARIOS)


@pytest.mark.parametrize("name", sorted(GOLDEN_DIGESTS))
def test_scenario_digest_matches_golden(name):
    assert scenario_digest(name) == GOLDEN_DIGESTS[name], (
        f"canonical trace digest of scenario {name!r} changed: a perf or "
        "refactor change altered simulation behaviour (event content or "
        "membership). Optimizations must be behavior-invisible."
    )


def test_scenario_runs_are_replay_stable():
    """The digest is a function of the scenario alone: replay == run."""
    assert scenario_digest("fig10_smoke") == scenario_digest("fig10_smoke")
