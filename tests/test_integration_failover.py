"""End-to-end integration tests: the whole cell through resilience events.

These exercise the full stack — RU, switch middlebox, PHYs, Orions, L2,
core, UEs — and assert the paper's headline behaviours.
"""

import pytest

from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_baseline_cell, build_slingshot_cell
from repro.sim.units import MS, SECOND, US, s_to_ns


def single_ue_config(seed=0, snr=16.0):
    return CellConfig(
        seed=seed, ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=snr)]
    )


@pytest.fixture(scope="module")
def failover_cell():
    """One shared failover run: killed primary at t=0.5 s, ran to 1.0 s."""
    cell = build_slingshot_cell(single_ue_config())
    cell.run_for(s_to_ns(0.5))
    cell.kill_phy_at(0, cell.sim.now + 137 * US)
    kill_time = cell.sim.now + 137 * US
    cell.run_for(s_to_ns(0.5))
    return cell, kill_time


class TestSteadyState:
    def test_cell_reaches_steady_operation(self):
        cell = build_slingshot_cell(single_ue_config(seed=3))
        cell.run_for(s_to_ns(0.4))
        assert cell.ru.stats.slots_with_control > 700
        assert cell.middlebox.stats.dl_filtered > 0  # Standby filtered.
        assert cell.ue(1).stats.rlf_events == 0
        assert cell.l2.stats.ul_crc_ok > 0

    def test_secondary_does_no_signal_processing(self):
        cell = build_slingshot_cell(single_ue_config(seed=4))
        cell.run_for(s_to_ns(0.4))
        assert cell.phy_servers[1].phy.cpu.fec_decodes == 0
        assert cell.phy_servers[1].phy.cpu.work_slots == 0
        assert cell.phy_servers[1].phy.cpu.null_slots > 700

    def test_deterministic_reruns(self):
        """Same seed, same trace — the determinism contract."""

        def run_once():
            cell = build_slingshot_cell(single_ue_config(seed=9))
            cell.run_for(s_to_ns(0.3))
            return (
                cell.sim.events_processed,
                cell.l2.stats.ul_crc_ok,
                cell.ue(1).stats.dl_crc_ok,
            )

        assert run_once() == run_once()


class TestFailover:
    def test_detection_within_one_tti_budget(self, failover_cell):
        cell, kill_time = failover_cell
        detected = cell.trace.last("mbox.failure_detected")
        assert detected is not None
        latency = detected.time - kill_time
        # T + precision + margin for in-flight heartbeats sent pre-kill.
        assert latency <= 2 * 500 * US

    def test_migration_committed_in_data_plane(self, failover_cell):
        cell, _ = failover_cell
        assert cell.middlebox.stats.migrations_executed == 1
        assert cell.middlebox.ru_to_phy.read(0) == 1

    def test_no_rlf_no_reattach(self, failover_cell):
        cell, _ = failover_cell
        assert cell.ue(1).stats.rlf_events == 0
        assert cell.ue(1).attached

    def test_secondary_takes_over_service(self, failover_cell):
        cell, _ = failover_cell
        secondary = cell.phy_servers[1].phy
        assert secondary.cpu.fec_decodes > 0
        assert secondary.cpu.work_slots > 0

    def test_dropped_ttis_at_most_three(self, failover_cell):
        cell, _ = failover_cell
        # Bring-up gaps excluded: measure only around the failure.
        gaps = cell.ru.stats.slots_without_control
        assert gaps <= 3 + 3  # <=3 from failover, <=3 from bring-up.

    def test_ru_never_sees_mixed_slot_sources(self, failover_cell):
        cell, _ = failover_cell
        assert cell.ru.stats.conflicting_source_slots == 0

    def test_uplink_service_resumes(self, failover_cell):
        cell, _ = failover_cell
        crc_ok_before = cell.l2.stats.ul_crc_ok
        cell.run_for(s_to_ns(0.2))
        assert cell.l2.stats.ul_crc_ok > crc_ok_before


class TestPlannedMigration:
    def test_zero_dropped_ttis(self):
        cell = build_slingshot_cell(single_ue_config(seed=5))
        cell.run_for(s_to_ns(0.4))
        gaps_before = cell.ru.stats.slots_without_control
        cell.planned_migration(0)
        cell.run_for(s_to_ns(0.3))
        assert cell.ru.stats.slots_without_control == gaps_before

    def test_roles_swap_and_service_continues(self):
        cell = build_slingshot_cell(single_ue_config(seed=6))
        cell.run_for(s_to_ns(0.4))
        cell.planned_migration(0)
        cell.run_for(s_to_ns(0.3))
        assignment = cell.l2_orion.cells[0]
        assert assignment.primary_phy == 1
        assert assignment.secondary_phy == 0
        # The old primary now runs on nulls; the new one does real work.
        assert cell.phy_servers[1].phy.cpu.fec_decodes > 0

    def test_migrate_back_and_forth(self):
        cell = build_slingshot_cell(single_ue_config(seed=7))
        cell.run_for(s_to_ns(0.4))
        for _ in range(4):
            cell.planned_migration(0)
            cell.run_for(s_to_ns(0.1))
        assert cell.middlebox.stats.migrations_executed == 4
        assert cell.ue(1).stats.rlf_events == 0

    def test_discarded_soft_state_does_not_disconnect(self):
        """The §4 claim in miniature: repeated migrations discard HARQ
        and SNR state yet the UE stays attached and served."""
        from repro.apps.iperf import UdpIperfUplink

        cell = build_slingshot_cell(single_ue_config(seed=8, snr=13.0))
        flow = UdpIperfUplink(
            cell.sim, cell.server, cell.ue(1), "f", 1, bitrate_bps=10e6
        )
        cell.run_for(s_to_ns(0.3))
        flow.start()
        for _ in range(5):
            cell.planned_migration(0)
            cell.run_for(s_to_ns(0.1))
        cell.run_for(s_to_ns(0.2))
        assert cell.ue(1).stats.rlf_events == 0
        assert flow.sink.stats.packets_received > 0
        assert flow.sink.stats.loss_rate < 0.2


class TestLiveUpgrade:
    def test_upgrade_improves_decoding_without_downtime(self):
        config = CellConfig(
            seed=11,
            ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=10.0)],
            phy_decoder_iterations=2,
            secondary_decoder_iterations=2,
        )
        cell = build_slingshot_cell(config)
        cell.run_for(s_to_ns(0.4))
        gaps_before = cell.ru.stats.slots_without_control
        cell.live_upgrade(decoder_iterations=12)
        cell.run_for(s_to_ns(0.3))
        assert cell.ru.stats.slots_without_control == gaps_before
        new_primary = cell.phy_servers[1].phy
        assert new_primary.config.decoder_iterations == 12
        assert new_primary.alive


class TestBaselineFailover:
    def test_baseline_ue_disconnects_for_seconds(self):
        cell = build_baseline_cell(single_ue_config(seed=12))
        cell.run_for(s_to_ns(0.5))
        cell.kill_phy_at(0, cell.sim.now + 100 * US)
        cell.run_for(s_to_ns(0.4))
        ue = cell.ue(1)
        assert ue.stats.rlf_events == 1
        assert not ue.attached
        # Reattach completes after the ~6.2 s core procedure.
        cell.run_for(s_to_ns(6.5))
        assert ue.attached
        assert ue.stats.reattach_completions == 1

    def test_baseline_reroutes_fronthaul_quickly(self):
        """The baseline gets Slingshot's fast reroute (most charitable
        comparison) — the outage is entirely the UE re-establishment."""
        cell = build_baseline_cell(single_ue_config(seed=13))
        cell.run_for(s_to_ns(0.5))
        cell.kill_phy_at(0, cell.sim.now)
        cell.run_for(s_to_ns(0.3))
        assert cell.middlebox.stats.migrations_executed == 1
        assert cell.trace.count("baseline.rerouted") == 1
