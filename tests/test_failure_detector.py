"""Tests for the in-switch failure detector (§5.2)."""

import pytest

from repro.core.failure_detector import DetectorConfig, FailureDetector
from repro.sim.units import US


class TestDetectorConfig:
    def test_paper_defaults(self):
        config = DetectorConfig()
        assert config.timeout_ns == 450 * US
        assert config.ticks_per_timeout == 50
        assert config.precision_ns == 9 * US

    def test_pktgen_rate_is_negligible(self):
        """~111k pps per monitored PHY at T=450us/n=50 — trivially small
        against a multi-Tbps switch."""
        config = DetectorConfig()
        assert config.pktgen_rate_pps < 200_000


class TestDetection:
    def _detector(self, **kwargs):
        detections = []
        detector = FailureDetector(
            DetectorConfig(**kwargs),
            notify=lambda phy, t: detections.append((phy, t)),
        )
        return detector, detections

    def test_counter_saturates_after_n_ticks(self):
        detector, detections = self._detector()
        detector.set_monitor(7, True)
        for tick in range(49):
            assert detector.on_timer_tick(tick * 9000) == []
        assert detector.on_timer_tick(49 * 9000) == [7]
        assert detections == [(7, 49 * 9000)]

    def test_heartbeat_resets_counter(self):
        detector, detections = self._detector()
        detector.set_monitor(1, True)
        for tick in range(200):
            detector.on_timer_tick(tick)
            if tick % 20 == 0:  # Heartbeat well inside the timeout.
                detector.on_heartbeat(1)
        assert detections == []

    def test_unmonitored_phy_never_reported(self):
        detector, detections = self._detector()
        for tick in range(200):
            detector.on_timer_tick(tick)
        assert detections == []

    def test_no_duplicate_notifications(self):
        detector, detections = self._detector()
        detector.set_monitor(3, True)
        for tick in range(300):
            detector.on_timer_tick(tick)
        assert len(detections) == 1

    def test_rearm_after_detection(self):
        detector, detections = self._detector()
        detector.set_monitor(3, True)
        for tick in range(60):
            detector.on_timer_tick(tick)
        detector.set_monitor(3, True)  # Re-arm.
        assert detector.stats.false_positives_rearmed == 1
        for tick in range(60, 120):
            detector.on_timer_tick(tick)
        assert len(detections) == 2

    def test_heartbeat_at_threshold_minus_one_prevents_detection(self):
        """A heartbeat landing when the counter sits at ``threshold - 1``
        (one tick from saturation) must reset it — detection then needs a
        full fresh timeout window, not just the one remaining tick."""
        detector, detections = self._detector()
        threshold = detector.config.ticks_per_timeout
        detector.set_monitor(4, True)
        for tick in range(threshold - 1):
            detector.on_timer_tick(tick)
        assert detector.counters.read(4) == threshold - 1
        assert detections == []
        detector.on_heartbeat(4)  # Last-instant save.
        assert detector.counters.read(4) == 0
        # The tick that would have saturated the counter now moves it to 1.
        detector.on_timer_tick(threshold - 1)
        assert detections == []
        # Silence from here: detection needs threshold further ticks, not one.
        for tick in range(threshold, 2 * threshold - 2):
            detector.on_timer_tick(tick)
        assert detections == []
        detector.on_timer_tick(2 * threshold - 1)
        assert [phy for phy, _ in detections] == [4]

    def test_rearm_reported_phy_after_secondary_replacement(self):
        """Secondary replacement re-arms a previously reported PHY id
        (the revived server returns as the new hot standby): the stale
        ``_reported`` entry must clear — counted as a re-arm — and the
        PHY must be detectable a second time."""
        detector, detections = self._detector()
        detector.set_monitor(0, True)
        detector.set_monitor(1, True)
        for tick in range(100):
            detector.on_timer_tick(tick)
            detector.on_heartbeat(1)  # Standby healthy; primary 0 dies.
        assert [phy for phy, _ in detections] == [0]
        # Replacement: Orion promotes 1, revives 0 as the new standby.
        detector.set_monitor(0, True)
        assert detector.stats.false_positives_rearmed == 1
        assert detector.counters.read(0) == 0
        for tick in range(100, 200):
            detector.on_timer_tick(tick)
            detector.on_heartbeat(1)
        assert [phy for phy, _ in detections] == [0, 0]
        assert detector.stats.failures_detected == 2

    def test_disarm_stops_monitoring(self):
        detector, detections = self._detector()
        detector.set_monitor(3, True)
        detector.set_monitor(3, False)
        for tick in range(100):
            detector.on_timer_tick(tick)
        assert detections == []

    def test_multiple_phys_independent(self):
        detector, detections = self._detector()
        detector.set_monitor(1, True)
        detector.set_monitor(2, True)
        for tick in range(100):
            detector.on_timer_tick(tick)
            detector.on_heartbeat(1)  # Only PHY 1 stays healthy.
        assert [phy for phy, _ in detections] == [2]

    def test_detection_latency_bounded_by_t_plus_precision(self):
        """With heartbeats stopping at t0, detection must land within
        T + one tick of t0 (the §8.2 timing argument)."""
        detector, detections = self._detector()
        detector.set_monitor(0, True)
        config = detector.config
        period = config.tick_period_ns
        last_heartbeat = 12_345
        time = 0
        tick = 0
        while not detections and time < 10 * config.timeout_ns:
            time = tick * period
            detector.on_timer_tick(time)
            if time <= last_heartbeat:
                detector.on_heartbeat(0)
            tick += 1
        latency = detections[0][1] - last_heartbeat
        assert latency <= config.timeout_ns + config.precision_ns
