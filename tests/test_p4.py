"""Tests for the P4 primitives: tables, registers, packet generator,
control plane, and the resource model."""

import numpy as np
import pytest

from repro.net.p4.control import ControlPlane
from repro.net.p4.packetgen import PacketGenerator, TimerPacket
from repro.net.p4.registers import RegisterArray
from repro.net.p4.resources import PipelineResourceModel
from repro.net.p4.tables import MatchActionTable
from repro.sim.engine import Simulator
from repro.sim.units import MS, US


class TestMatchActionTable:
    def test_install_and_lookup(self):
        table = MatchActionTable("t", capacity=4, key_bits=48, value_bits=8)
        table.install("key", 42)
        assert table.lookup("key") == 42
        assert table.lookup("missing") is None

    def test_capacity_enforced(self):
        table = MatchActionTable("t", capacity=2, key_bits=8, value_bits=8)
        table.install("a", 1)
        table.install("b", 2)
        with pytest.raises(RuntimeError):
            table.install("c", 3)

    def test_overwrite_existing_within_capacity(self):
        table = MatchActionTable("t", capacity=1, key_bits=8, value_bits=8)
        table.install("a", 1)
        table.install("a", 2)  # No error; same key.
        assert table.lookup("a") == 2

    def test_remove(self):
        table = MatchActionTable("t", capacity=2, key_bits=8, value_bits=8)
        table.install("a", 1)
        table.remove("a")
        assert "a" not in table
        table.remove("a")  # Idempotent.

    def test_hit_counters(self):
        table = MatchActionTable("t", capacity=2, key_bits=8, value_bits=8)
        table.install("a", 1)
        table.lookup("a")
        table.lookup("b")
        assert table.lookups == 2
        assert table.hits == 1

    def test_sram_accounting(self):
        table = MatchActionTable("t", capacity=256, key_bits=48, value_bits=8)
        assert table.sram_bits == 256 * 56


class TestRegisterArray:
    def test_read_write(self):
        registers = RegisterArray("r", size=8)
        registers.write(3, 99)
        assert registers.read(3) == 99
        assert registers.read(0) == 0

    def test_width_masking(self):
        registers = RegisterArray("r", size=2, width_bits=8)
        registers.write(0, 0x1FF)
        assert registers.read(0) == 0xFF

    def test_saturating_increment(self):
        registers = RegisterArray("r", size=1, width_bits=8)
        registers.write(0, 254)
        assert registers.increment(0) == 255
        assert registers.increment(0) == 255  # Saturates, not wraps.

    def test_bounds_checked(self):
        registers = RegisterArray("r", size=4)
        with pytest.raises(IndexError):
            registers.read(4)
        with pytest.raises(IndexError):
            registers.write(-1, 0)

    def test_reset_all(self):
        registers = RegisterArray("r", size=3)
        registers.write(1, 7)
        registers.reset_all()
        assert registers.snapshot() == [0, 0, 0]

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            RegisterArray("r", size=0)


class TestPacketGenerator:
    def test_rate_matches_timeout_division(self):
        sim = Simulator()
        ticks = []
        generator = PacketGenerator.for_timeout(
            sim, ticks.append, timeout_ns=450 * US, ticks_per_timeout=50
        )
        assert generator.period == 9 * US
        sim.run_until(90 * US)
        assert len(ticks) == 11  # t=0 inclusive through t=90us.

    def test_paper_parameters_give_50k_pps(self):
        sim = Simulator()
        generator = PacketGenerator.for_timeout(
            sim, lambda t: None, timeout_ns=450 * US, ticks_per_timeout=50
        )
        assert generator.rate_pps == pytest.approx(1e9 / 9000)

    def test_tick_payloads_numbered(self):
        sim = Simulator()
        ticks = []
        PacketGenerator(sim, ticks.append, period_ns=1000)
        sim.run_until(3000)
        assert [t.tick for t in ticks] == [0, 1, 2, 3]

    def test_invalid_ticks_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PacketGenerator.for_timeout(sim, lambda t: None, 1000, 0)


class TestControlPlane:
    def test_updates_are_slow(self):
        """Rule updates land tens of ms later — why migration cannot be
        triggered from the control plane (§5.1)."""
        sim = Simulator()
        control = ControlPlane(sim, rng=np.random.default_rng(0))
        table = MatchActionTable("t", capacity=4, key_bits=8, value_bits=8)
        apply_time = control.install_rule(table, "k", 1)
        assert apply_time - sim.now > 3 * MS
        assert table.lookup("k") is None  # Not yet applied.
        sim.run()
        assert table.lookup("k") == 1

    def test_p999_latency_near_29ms(self):
        control = ControlPlane(Simulator(), rng=np.random.default_rng(1))
        samples = np.array(
            [control.sample_update_latency_ns() for _ in range(4000)]
        )
        p999_ms = np.percentile(samples, 99.9) / MS
        assert 20.0 < p999_ms < 40.0

    def test_sync_install_is_immediate(self):
        sim = Simulator()
        control = ControlPlane(sim)
        table = MatchActionTable("t", capacity=4, key_bits=8, value_bits=8)
        control.install_rule_sync(table, "k", 5)
        assert table.lookup("k") == 5


class TestResourceModel:
    def test_paper_percentages_at_256(self):
        """The §8.6 table: crossbar 5.2, ALU 10.4, gateway 14.1,
        SRAM 5.3, hash 9.5 (percent)."""
        usage = PipelineResourceModel().usage(256, 256)
        assert usage.percent("crossbar") == pytest.approx(5.2, abs=0.3)
        assert usage.percent("alu") == pytest.approx(10.4, abs=0.5)
        assert usage.percent("gateway") == pytest.approx(14.1, abs=0.5)
        assert usage.percent("sram_bits") == pytest.approx(5.3, abs=0.3)
        assert usage.percent("hash_bits") == pytest.approx(9.5, abs=0.5)

    def test_only_sram_grows_meaningfully_with_scale(self):
        model = PipelineResourceModel()
        small = model.usage(64, 64)
        large = model.usage(1024, 1024)
        sram_growth = large.percent("sram_bits") - small.percent("sram_bits")
        for other in ("alu", "gateway"):
            assert large.percent(other) - small.percent(other) < sram_growth / 4

    def test_hundreds_of_rus_fit(self):
        model = PipelineResourceModel()
        assert model.max_supported_entries("sram_bits") > 1000

    def test_invalid_deployment_rejected(self):
        with pytest.raises(ValueError):
            PipelineResourceModel().usage(0, 1)
