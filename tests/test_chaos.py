"""Tests for the chaos harness: fault plans, link impairments, the
injector's wiring, the recovery-invariant checker, and a tier-1 smoke
run proving digest-stable replays."""

import pytest

from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.faults import (
    CorruptedPayload,
    FaultInjector,
    FaultPlan,
    LinkFaultSpec,
    LinkImpairment,
    ProcessFaultSpec,
    RecoveryInvariants,
)
from repro.faults.campaign import run_scenario
from repro.faults.invariants import PROBE_RX
from repro.faults.scenarios import scenario_by_name, standard_scenarios
from repro.net.addresses import MacAddress
from repro.net.link import Link
from repro.net.packet import EtherType, EthernetFrame
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.sim.units import MS


class Collector:
    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def receive_frame(self, frame, ingress):
        self.received.append((self.sim.now, frame))


def make_frame(ethertype=EtherType.IPV4, payload="x"):
    return EthernetFrame(
        src=MacAddress(1),
        dst=MacAddress(2),
        ethertype=ethertype,
        payload=payload,
        wire_bytes=100,
    )


def impaired_link(spec, seed=7):
    """A link with one impairment spec attached; returns (sim, link, sink)."""
    sim = Simulator()
    sink = Collector(sim)
    link = Link(sim, sink, bandwidth_bps=0, latency_ns=1_000, name="lk")
    link.impairment = LinkImpairment(
        (spec,), RngRegistry(seed).stream("faults.link.lk")
    )
    return sim, link, sink


class TestLinkImpairment:
    def test_certain_loss_drops_every_frame(self):
        sim, link, sink = impaired_link(LinkFaultSpec("lk", loss_prob=1.0))
        for _ in range(5):
            link.send(make_frame())
        sim.run()
        assert sink.received == []
        assert link.impairment.stats.dropped == 5

    def test_certain_duplication_delivers_twice(self):
        sim, link, sink = impaired_link(LinkFaultSpec("lk", dup_prob=1.0))
        link.send(make_frame(payload="p"))
        sim.run()
        assert len(sink.received) == 2
        assert sink.received[0][1].payload == "p"
        assert sink.received[1][0] > sink.received[0][0]

    def test_corruption_wraps_payload(self):
        sim, link, sink = impaired_link(LinkFaultSpec("lk", corrupt_prob=1.0))
        link.send(make_frame(payload="clean"))
        sim.run()
        ((_, frame),) = sink.received
        assert isinstance(frame.payload, CorruptedPayload)
        assert frame.payload.original == "clean"

    def test_reorder_shifts_arrival(self):
        sim, link, sink = impaired_link(
            LinkFaultSpec("lk", reorder_prob=1.0, reorder_jitter_ns=50_000)
        )
        nominal = link.send(make_frame())
        sim.run()
        ((arrived, _),) = sink.received
        assert nominal < arrived <= nominal + 50_000

    def test_window_gating(self):
        """Frames outside [start_ns, end_ns) pass untouched."""
        sim, link, sink = impaired_link(
            LinkFaultSpec("lk", start_ns=10_000, end_ns=20_000, loss_prob=1.0)
        )
        link.send(make_frame())  # At t=0: before the window.
        sim.at(15_000, link.send, make_frame())  # Inside: dropped.
        sim.at(25_000, link.send, make_frame())  # After: untouched.
        sim.run()
        assert len(sink.received) == 2
        assert link.impairment.stats.dropped == 1

    def test_ethertype_filter(self):
        sim, link, sink = impaired_link(
            LinkFaultSpec(
                "lk", loss_prob=1.0, ethertypes=(EtherType.SLINGSHOT,)
            )
        )
        link.send(make_frame(ethertype=EtherType.IPV4))
        link.send(make_frame(ethertype=EtherType.SLINGSHOT))
        sim.run()
        assert [f.ethertype for _, f in sink.received] == [EtherType.IPV4]

    def test_decisions_replay_identically(self):
        """Same stream seed, same frame sequence -> same fates."""

        def fates(seed):
            sim, link, sink = impaired_link(
                LinkFaultSpec(
                    "lk",
                    loss_prob=0.3,
                    dup_prob=0.2,
                    reorder_prob=0.2,
                    reorder_jitter_ns=10_000,
                ),
                seed=seed,
            )
            for i in range(200):
                sim.at(1 + i * 2_000, link.send, make_frame(payload=i))
            sim.run()
            return [(t, f.payload) for t, f in sink.received]

        assert fates(3) == fates(3)
        assert fates(3) != fates(4)


class TestFaultPlan:
    def test_unknown_process_kind_rejected(self):
        with pytest.raises(ValueError):
            ProcessFaultSpec(phy_id=0, kind="meltdown", at_ns=0)

    def test_describe_is_json_ready(self):
        import json

        plan = scenario_by_name()["cmd_drop"].plan
        described = plan.describe()
        assert described["name"] == "cmd_drop"
        assert described["link_faults"][0]["ethertypes"] == ["SLINGSHOT"]
        json.dumps(described)  # Must not raise.


class TestFaultInjector:
    def _cell(self):
        return build_slingshot_cell(
            CellConfig(
                seed=5,
                num_phy_servers=2,
                ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=16.0)],
            )
        )

    def test_arm_attaches_only_matching_links(self):
        cell = self._cell()
        plan = FaultPlan(
            name="t", link_faults=(LinkFaultSpec("ru0", loss_prob=0.1),)
        )
        injector = FaultInjector(cell, plan)
        injector.arm()
        assert set(injector.impairments) == {
            "ru0->edge-switch",
            "edge-switch->ru0",
        }

    def test_double_arm_rejected(self):
        cell = self._cell()
        injector = FaultInjector(cell, FaultPlan(name="t"))
        injector.arm()
        with pytest.raises(RuntimeError):
            injector.arm()

    def test_link_fault_stats_shape(self):
        cell = self._cell()
        plan = FaultPlan(
            name="t", link_faults=(LinkFaultSpec("l2", loss_prob=1.0),)
        )
        injector = FaultInjector(cell, plan)
        injector.arm()
        stats = injector.link_fault_stats()
        assert [s["link"] for s in stats] == sorted(s["link"] for s in stats)
        assert all("dropped" in s and "frames_seen" in s for s in stats)


def recorded(events):
    trace = TraceRecorder()
    for time, category, fields in events:
        trace.record(time, category, **fields)
    return trace.canonical_events()


def checker(events, **kwargs):
    defaults = dict(
        window_start_ns=0,
        window_end_ns=100 * MS,
        downtime_budget_ns=20 * MS,
        expected_migrations=1,
    )
    defaults.update(kwargs)
    return RecoveryInvariants(recorded(events), **defaults)


class TestRecoveryInvariants:
    def _steady_probe(self, period_ns=5 * MS, until_ns=100 * MS):
        return [
            (t, PROBE_RX, {"seq": i})
            for i, t in enumerate(range(0, until_ns + 1, period_ns))
        ]

    def test_bounded_downtime_passes_within_budget(self):
        c = checker(self._steady_probe(), expected_migrations=0)
        assert c.max_probe_gap_ns() == 5 * MS
        assert c.check_bounded_downtime().passed

    def test_bounded_downtime_fails_on_long_gap(self):
        events = [
            (t, PROBE_RX, {}) for t in range(0, 101 * MS, 5 * MS)
            if not 40 * MS < t < 90 * MS
        ]
        c = checker(events)
        assert c.max_probe_gap_ns() == 50 * MS
        assert not c.check_bounded_downtime().passed

    def test_window_edges_charge_dead_flows(self):
        """A flow that dies mid-window is charged up to the window end."""
        c = checker([(10 * MS, PROBE_RX, {})])
        assert c.max_probe_gap_ns() == 90 * MS

    def test_no_deliveries_fails_not_crashes(self):
        c = checker([])
        assert c.max_probe_gap_ns() is None
        assert not c.check_bounded_downtime().passed

    def test_unbounded_budget_skips_downtime_check(self):
        c = checker([], downtime_budget_ns=None)
        assert c.check_bounded_downtime().passed

    def test_exactly_once_migration(self):
        commit = (1 * MS, "mbox.migration_committed", {"ru": 0})
        assert checker([commit]).check_exactly_once_migration().passed
        assert not checker([]).check_exactly_once_migration().passed
        assert not checker(
            [commit, (2 * MS, "mbox.migration_committed", {"ru": 0})]
        ).check_exactly_once_migration().passed

    def test_no_stale_frames_counts_transitions(self):
        base = [
            (1 * MS, "mbox.migration_committed", {"ru": 0}),
            (0, "ru.source_changed", {"source": 0, "previous": None}),
            (2 * MS, "ru.source_changed", {"source": 1, "previous": 0}),
        ]
        assert checker(base).check_no_stale_frames().passed
        # A conflicting-sources slot is an instant failure.
        assert not checker(
            base + [(3 * MS, "ru.conflicting_sources", {"slot": 9})]
        ).check_no_stale_frames().passed
        # An extra flip without a commit means a stale frame got through.
        assert not checker(
            base + [(4 * MS, "ru.source_changed", {"source": 0, "previous": 1})]
        ).check_no_stale_frames().passed

    def test_degraded_mode_visibility(self):
        impossible = (1 * MS, "orion.failover_impossible", {"cell": 0})
        c = checker([impossible], expect_failover_impossible=True)
        assert c.check_degraded_mode_visible().passed
        c = checker([], expect_failover_impossible=True)
        assert not c.check_degraded_mode_visible().passed


class TestScenarioMatrix:
    def test_matrix_covers_required_fault_kinds(self):
        scenarios = standard_scenarios()
        assert len(scenarios) >= 8
        kinds = {
            spec.kind for s in scenarios for spec in s.plan.process_faults
        }
        assert {"crash", "crash_restart", "hang", "slowdown"} <= kinds
        assert any(s.plan.clock_faults for s in scenarios)
        assert any(
            spec.loss_prob for s in scenarios for spec in s.plan.link_faults
        )
        assert any(
            spec.corrupt_prob for s in scenarios for spec in s.plan.link_faults
        )
        assert any(
            spec.reorder_prob for s in scenarios for spec in s.plan.link_faults
        )

    def test_names_unique(self):
        names = [s.name for s in standard_scenarios()]
        assert len(names) == len(set(names))


class TestChaosSmoke:
    """Tier-1 gate: one scenario, two seeds, digest-equal replays."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_crash_scenario_replays_bit_identically(self, seed):
        scenario = scenario_by_name()["crash"]
        run = run_scenario(scenario, seed, replay=True)
        assert run.replay_digest_matched is True
        failed = [r["name"] for r in run.invariants if not r["passed"]]
        assert not failed, failed
        assert run.migrations_committed == 1
        assert run.detection["switch_detector"] == 1
