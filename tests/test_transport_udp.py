"""Unit tests for UDP flows, packets, and throughput binning."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.units import MS, SECOND
from repro.transport.packet import FlowDirection, Packet
from repro.transport.udp import UdpSender, UdpSink


class TestUdpSender:
    def test_pacing_matches_bitrate(self):
        sim = Simulator()
        sent = []
        sender = UdpSender(
            sim, "f", 1, 1, FlowDirection.UPLINK,
            transmit=sent.append, bitrate_bps=9.6e6, packet_bytes=1200,
        )
        sender.start()
        sim.run_until(SECOND)
        # 9.6 Mb/s at 1200 B = 1000 packets/s.
        assert len(sent) == pytest.approx(1000, abs=2)

    def test_sequence_numbers_monotonic(self):
        sim = Simulator()
        sent = []
        sender = UdpSender(
            sim, "f", 1, 1, FlowDirection.UPLINK,
            transmit=sent.append, bitrate_bps=1e6,
        )
        sender.start()
        sim.run_until(100 * MS)
        seqs = [p.seq for p in sent]
        assert seqs == list(range(len(seqs)))

    def test_stop_halts_flow(self):
        sim = Simulator()
        sent = []
        sender = UdpSender(
            sim, "f", 1, 1, FlowDirection.UPLINK,
            transmit=sent.append, bitrate_bps=1e6,
        )
        sender.start()
        sim.run_until(50 * MS)
        sender.stop()
        count = len(sent)
        sim.run_until(200 * MS)
        assert len(sent) == count

    def test_set_bitrate_changes_pace(self):
        sim = Simulator()
        sent = []
        sender = UdpSender(
            sim, "f", 1, 1, FlowDirection.UPLINK,
            transmit=sent.append, bitrate_bps=1e6, packet_bytes=1250,
        )
        sender.start()
        sim.run_until(500 * MS)
        first_half = len(sent)
        sender.set_bitrate(4e6)
        sim.run_until(SECOND)
        assert len(sent) - first_half > 3 * first_half


class TestUdpSink:
    def _packet(self, seq, now, size=1000):
        return Packet(
            flow_id="f", ue_id=1, bearer_id=1,
            direction=FlowDirection.UPLINK, payload=None,
            size_bytes=size, created_ns=now, seq=seq,
        )

    def test_loss_accounting(self):
        sim = Simulator()
        sink = UdpSink(sim, "f")
        sink.stats.packets_sent = 10
        for seq in (0, 1, 2, 4, 5):  # 3 lost (of sent=10; 5 received).
            sink.on_packet(self._packet(seq, sim.now))
        assert sink.stats.packets_received == 5
        assert sink.stats.loss_rate == pytest.approx(0.5)

    def test_duplicates_not_double_counted(self):
        sim = Simulator()
        sink = UdpSink(sim, "f")
        sink.on_packet(self._packet(0, 0))
        sink.on_packet(self._packet(0, 0))
        assert sink.stats.packets_received == 1
        assert sink.stats.duplicates == 1

    def test_throughput_bins(self):
        sim = Simulator()
        sink = UdpSink(sim, "f", bin_ns=10 * MS)
        # 5 packets of 1250 B in bin 0 -> 5 Mb/s.
        for seq in range(5):
            sink.on_packet(self._packet(seq, 0, size=1250))
        series = sink.throughput_series(0, 30 * MS)
        assert len(series) == 3
        assert series[0][1] == pytest.approx(5.0)
        assert series[1][1] == 0.0

    def test_blackout_bins(self):
        sim = Simulator()
        sink = UdpSink(sim, "f", bin_ns=10 * MS)
        sink.on_packet(self._packet(0, 0))
        assert sink.blackout_bins(0, 50 * MS) == 4

    def test_min_max_bins(self):
        sim = Simulator()
        sink = UdpSink(sim, "f", bin_ns=10 * MS)
        sink.on_packet(self._packet(0, 0, size=1250))
        series_min, series_max = sink.min_max_bin_mbps(0, 20 * MS)
        assert series_min == 0.0
        assert series_max == pytest.approx(1.0)

    def test_latency_recorded(self):
        sim = Simulator()
        sink = UdpSink(sim, "f")
        sim.schedule(5 * MS, lambda: sink.on_packet(self._packet(0, 0)))
        sim.run()
        assert sink.latencies_ns == [5 * MS]


class TestPacket:
    def test_unique_ids(self):
        a = Packet("f", 1, 1, FlowDirection.UPLINK, None, 10)
        b = Packet("f", 1, 1, FlowDirection.UPLINK, None, 10)
        assert a.packet_id != b.packet_id
