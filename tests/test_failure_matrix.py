"""Robustness matrix: failures beyond the paper's headline scenario.

The paper evaluates primary-PHY failure; a deployable system must also
behave sanely when the *standby* dies, when *both* servers die, when a
failure hits mid-migration, and when failures repeat. These tests pin
that behaviour.
"""

import pytest

from repro.cell.config import CellConfig, UeProfile
from repro.cell.deployment import build_slingshot_cell
from repro.sim.units import MS, US, s_to_ns


def single_ue(seed, servers=2):
    return CellConfig(
        seed=seed,
        num_phy_servers=servers,
        ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=16.0)],
    )


class TestStandbyFailure:
    def test_standby_death_does_not_disturb_service(self):
        """Killing the hot standby must be a non-event for users."""
        cell = build_slingshot_cell(single_ue(80))
        cell.run_for(s_to_ns(0.5))
        crc_before = cell.l2.stats.ul_crc_ok
        gaps_before = cell.ru.stats.slots_without_control
        cell.kill_phy_at(1, cell.sim.now + 100 * US)
        cell.run_for(s_to_ns(0.5))
        assert cell.middlebox.stats.migrations_executed == 0
        assert cell.ru.stats.slots_without_control == gaps_before
        assert cell.l2.stats.ul_crc_ok > crc_before
        assert cell.ue(1).stats.rlf_events == 0
        # The primary assignment never changed.
        assert cell.l2_orion.cells[0].primary_phy == 0

    def test_standby_death_then_primary_death_still_fails_over_if_replaced(self):
        cell = build_slingshot_cell(single_ue(81, servers=3))
        cell.run_for(s_to_ns(0.5))
        cell.kill_phy_at(1, cell.sim.now)  # Standby dies.
        cell.run_for(s_to_ns(0.2))
        # Operator replaces the dead standby with the spare.
        cell.l2_orion.cells[0].secondary_phy = None
        assert cell.controller.replace_failed_secondary(0) == 2
        cell.run_for(s_to_ns(0.2))
        cell.kill_phy_at(0, cell.sim.now + 100 * US)  # Primary dies.
        cell.run_for(s_to_ns(0.5))
        assert cell.l2_orion.cells[0].primary_phy == 2
        assert cell.ue(1).stats.rlf_events == 0


class TestTotalFailure:
    def test_both_servers_dead_leads_to_rlf_and_reattach(self):
        """With no surviving PHY, the UE must fall back to the baseline
        behaviour: RLF, then reattach once service returns."""
        cell = build_slingshot_cell(single_ue(82))
        cell.run_for(s_to_ns(0.5))
        cell.kill_phy_at(0, cell.sim.now + 100 * US)
        cell.kill_phy_at(1, cell.sim.now + 150 * US)
        cell.run_for(s_to_ns(0.3))
        ue = cell.ue(1)
        assert not ue.attached
        assert ue.stats.rlf_events == 1
        # Revive a server and re-initialize: the UE comes back after the
        # attach procedure.
        cell.phy_servers[1].phy.restart()
        cell.l2_orion.initialize_secondary(0, 1)
        cell.l2_orion.planned_migration(0)
        cell.run_for(s_to_ns(7.0))
        assert ue.attached
        assert ue.stats.reattach_completions == 1


class TestFailureDuringMigration:
    def test_destination_dies_right_after_planned_migration(self):
        """A failover can chase a planned migration: the old primary
        (now standby) takes the cell back."""
        cell = build_slingshot_cell(single_ue(83))
        cell.run_for(s_to_ns(0.5))
        cell.planned_migration(0)
        cell.run_for(s_to_ns(0.2))  # Roles swapped: primary is now 1.
        assert cell.l2_orion.cells[0].primary_phy == 1
        cell.kill_phy_at(1, cell.sim.now + 100 * US)
        cell.run_for(s_to_ns(0.5))
        assert cell.l2_orion.cells[0].primary_phy == 0
        assert cell.middlebox.stats.migrations_executed == 2
        assert cell.ue(1).stats.rlf_events == 0

    def test_rapid_double_failover_sequence(self):
        cell = build_slingshot_cell(single_ue(84, servers=3))
        cell.run_for(s_to_ns(0.5))
        cell.kill_phy_at(0, cell.sim.now + 100 * US)
        cell.run_for(s_to_ns(0.25))
        cell.controller.replace_failed_secondary(0)
        cell.run_for(s_to_ns(0.25))
        cell.kill_phy_at(1, cell.sim.now + 100 * US)
        cell.run_for(s_to_ns(0.5))
        assert cell.l2_orion.cells[0].primary_phy == 2
        assert cell.ue(1).stats.rlf_events == 0
        crc_before = cell.l2.stats.ul_crc_ok
        cell.run_for(s_to_ns(0.3))
        assert cell.l2.stats.ul_crc_ok > crc_before


class TestDetectorRobustness:
    def test_no_false_failover_across_long_healthy_run(self):
        cell = build_slingshot_cell(single_ue(85))
        cell.run_for(s_to_ns(3.0))
        assert cell.trace.count("mbox.failure_detected") == 0
        assert cell.middlebox.stats.migrations_executed == 0

    def test_crash_during_uplink_burst_detected_normally(self):
        from repro.apps.iperf import UdpIperfUplink

        cell = build_slingshot_cell(single_ue(86))
        flow = UdpIperfUplink(
            cell.sim, cell.server, cell.ue(1), "f", 1, bitrate_bps=20e6
        )
        cell.run_for(s_to_ns(0.3))
        flow.start()
        cell.run_for(s_to_ns(0.3))
        kill_at = cell.sim.now + 77 * US
        cell.kill_phy_at(0, kill_at)
        cell.run_for(s_to_ns(0.4))
        detected = cell.trace.last("mbox.failure_detected")
        assert detected is not None
        assert detected.time - kill_at < 2 * 500 * US
        assert cell.ue(1).stats.rlf_events == 0
