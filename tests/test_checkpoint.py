"""Checkpoint/restore, soak, and scenario-forking tests.

The continuous-operation contract under test (DESIGN.md §13):

* ``restore(checkpoint(t))`` replays **bit-identically** — the restored
  run's canonical trace digest equals the uninterrupted run's, for the
  golden perf scenarios and for checkpoints captured *mid-recovery* in
  every chaos scenario class;
* soak runs survive eviction and crash-resume with the same rolling
  digest;
* forked branches from a warm base are digest-identical to cold runs at
  any ``--jobs``;
* the recorded ``BENCH_soak.json`` baseline gates all of it via
  ``python -m repro soak --check --quick`` (tier-1).
"""

import pickle

import pytest

from repro.checkpoint import Checkpoint, SnapshotError, SnapshotRegistry
from repro.checkpoint.fork import fork_key, forked_sweep
from repro.checkpoint.soak import run_soak
from repro.faults.campaign import (
    arm_plan,
    build_probe_harness,
    drive_to,
    judge_execution,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, ProcessFaultSpec
from repro.faults.scenarios import RUN_END_NS, scenario_by_name
from repro.faults.soak import SoakConfig
from repro.fleet import FleetConfig, build_fleet, fleet_digest
from repro.parallel import run_shards
from repro.sim.units import MS

#: Mid-recovery capture point: inside every standard scenario's fault
#: window (faults land at 550 ms, recovery completes by 850 ms).
MID_RECOVERY_NS = 600 * MS


# ----------------------------------------------------------------------
# Top-level shard worker (picklable) for the jobs-swept matrix test.
# ----------------------------------------------------------------------
def _mid_recovery_verify(payload):
    """Checkpoint one scenario mid-recovery; finish both timelines.

    Returns the continued and restored runs — the caller asserts the
    digests and verdicts are identical (and match the recorded chaos
    baseline).
    """
    name, seed = payload
    scenario = scenario_by_name()[name]
    harness = build_probe_harness(
        seed, num_phy_servers=scenario.num_phy_servers
    )
    arm_plan(harness, scenario.plan)
    drive_to(harness, MID_RECOVERY_NS)
    checkpoint = Checkpoint.capture(harness, label=f"mid-recovery {name}")
    drive_to(harness, RUN_END_NS)
    continued = judge_execution(scenario, seed, harness.cell, harness.injector)
    restored = checkpoint.restore()
    drive_to(restored, RUN_END_NS)
    replayed = judge_execution(scenario, seed, restored.cell, restored.injector)
    return {
        "continued": continued,
        "restored": replayed,
        "checkpoint_sim_ns": checkpoint.meta.sim_now_ns,
    }


def _chaos_baseline():
    from repro.checkpoint.soak import _chaos_baseline_digests

    digests = _chaos_baseline_digests()
    assert digests, "benchmarks/BENCH_chaos.json missing - record it first"
    return digests


class TestCheckpointPrimitives:
    @pytest.fixture(scope="class")
    def warm(self):
        harness = build_probe_harness(1)
        drive_to(harness, 50 * MS)
        return harness

    def test_capture_verifies_and_stamps_meta(self, warm):
        checkpoint = Checkpoint.capture(warm, label="warm-50ms")
        assert checkpoint.meta.label == "warm-50ms"
        assert checkpoint.meta.sim_now_ns == 50 * MS
        assert checkpoint.meta.events_processed == warm.cell.sim.events_processed
        assert checkpoint.meta.classes  # manifest classes seen in the graph

    def test_save_load_round_trip(self, warm, tmp_path):
        checkpoint = Checkpoint.capture(warm, label="roundtrip")
        path = tmp_path / "warm.ckpt"
        checkpoint.save(path)
        loaded = Checkpoint.load(path)
        assert loaded.meta == checkpoint.meta
        assert loaded.payload == checkpoint.payload
        restored = loaded.restore()
        assert restored.cell.sim.now == warm.cell.sim.now
        assert restored.cell.trace.digest() == warm.cell.trace.digest()

    def test_corrupt_payload_rejected(self, warm):
        checkpoint = Checkpoint.capture(warm, label="tamper")
        tampered = Checkpoint(
            meta=checkpoint.meta,
            payload=checkpoint.payload[:-1] + b"\x00",
        )
        with pytest.raises(SnapshotError, match="sha256|hash|digest"):
            tampered.restore()

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "not-a-checkpoint.ckpt"
        path.write_bytes(b"definitely not the magic header\n")
        with pytest.raises(SnapshotError):
            Checkpoint.load(path)

    def test_two_simulators_rejected(self, warm):
        other = build_probe_harness(2)
        with pytest.raises(SnapshotError, match="[Ss]imulator"):
            Checkpoint.capture([warm, other], label="twins")

    def test_registry_scan_counts_manifest_classes(self, warm):
        counts, simulators, problems = SnapshotRegistry().scan(warm)
        assert problems == []
        assert len(simulators) == 1
        assert counts.get("repro.sim.engine.Simulator") == 1


@pytest.mark.slow
class TestMidRecoveryCheckpoints:
    """Satellite 3: every chaos scenario class checkpoints mid-recovery
    and replays bit-identically, at --jobs 1 and 2."""

    def test_all_scenario_classes_replay_identically_jobs2(self):
        baseline = _chaos_baseline()
        names = sorted(scenario_by_name())
        outcome = run_shards(
            _mid_recovery_verify,
            [(name, (name, 1)) for name in names],
            jobs=2,
        )
        for name, result in zip(outcome.keys, outcome.values()):
            continued, restored = result["continued"], result["restored"]
            assert result["checkpoint_sim_ns"] == MID_RECOVERY_NS
            assert restored.digest == continued.digest, (
                f"{name}: restored run diverged from the uninterrupted run"
            )
            assert restored.invariants == continued.invariants, (
                f"{name}: restored-run verdicts diverged"
            )
            assert restored.passed and continued.passed, (
                f"{name}: recovery invariants failed"
            )
            assert continued.digest == baseline[(name, 1)], (
                f"{name}: run diverged from the recorded chaos baseline"
            )

    def test_serial_pass_matches_pooled_on_subset(self):
        names = ["cmd_drop", "crash_restart"]
        serial = run_shards(
            _mid_recovery_verify, [(n, (n, 1)) for n in names], jobs=1
        )
        pooled = run_shards(
            _mid_recovery_verify, [(n, (n, 1)) for n in names], jobs=2
        )
        assert serial.values() == pooled.values()


@pytest.mark.slow
class TestGoldenRestoreIdentity:
    """The four golden digest scenarios restore to their golden values."""

    @pytest.mark.parametrize(
        "name,runner_name,duration_s",
        [
            ("fig9", "run_fig9_cell", 1.2),
            ("fig10_smoke", "run_fig10_smoke_cell", 1.0),
        ],
    )
    def test_figure_scenarios(self, name, runner_name, duration_s):
        from repro.perf import scenarios as perf_scenarios
        from repro.sim.units import run_until_ns, seconds
        from tests.test_perf_digests import GOLDEN_DIGESTS

        captured = {}
        runner = getattr(perf_scenarios, runner_name)
        cell = runner(
            pause_at_s=0.7,
            on_pause=lambda c: captured.update(
                checkpoint=Checkpoint.capture(c, label=f"{name}@0.7s")
            ),
        )
        golden = GOLDEN_DIGESTS[name]
        assert cell.trace.digest() == golden
        restored = captured["checkpoint"].restore()
        run_until_ns(restored, seconds(duration_s))
        assert restored.trace.digest() == golden

    @pytest.mark.parametrize(
        "golden_name,scenario_name",
        [
            ("chaos_cmd_drop", "cmd_drop"),
            ("chaos_crash_restart", "crash_restart"),
        ],
    )
    def test_chaos_scenarios(self, golden_name, scenario_name):
        from tests.test_perf_digests import GOLDEN_DIGESTS

        result = _mid_recovery_verify((scenario_name, 1))
        assert result["restored"].digest == GOLDEN_DIGESTS[golden_name]


@pytest.mark.slow
class TestForkedSweep:
    def test_forked_branches_match_cold_digests_at_any_jobs(self, tmp_path):
        """A quick 4-scenario forked sweep (one shared warm base) is
        digest-identical to the recorded cold baseline at jobs 1 and 2,
        and the second sweep reuses the bases the first built."""
        from repro.checkpoint.soak import QUICK_FORK_SCENARIOS

        baseline = _chaos_baseline()
        catalog = scenario_by_name()
        scenarios = [catalog[n] for n in QUICK_FORK_SCENARIOS]
        assert len({fork_key(s, 1) for s in scenarios}) == 1

        report1, info1 = forked_sweep(scenarios, (1,), tmp_path, jobs=1)
        report2, info2 = forked_sweep(scenarios, (1,), tmp_path, jobs=2)
        assert info1["bases_built"] == 1 and info1["bases_reused"] == 0
        assert info2["bases_built"] == 0 and info2["bases_reused"] == 1
        for report in (report1, report2):
            for run in report.runs:
                assert run.passed
                assert run.digest == baseline[(run.scenario, run.seed)]
        assert [r.digest for r in report1.runs] == [
            r.digest for r in report2.runs
        ]


class TestSoakResume:
    def test_soak_resume_reproduces_rolling_digest(self, tmp_path):
        """Crash-resume from the earliest retained checkpoint replays
        the uninterrupted run's rolling digest, with eviction active."""
        config = SoakConfig(seed=5, horizon_ns=1500 * MS)
        _, summary, written = run_soak(config, checkpoint_dir=tmp_path)
        assert summary["evicted_events"] > 0
        assert written, "soak wrote no checkpoints"
        boundary, path = written[0]
        _, resumed, _ = run_soak(resume=path)
        assert resumed["resumed_from_ns"] == boundary
        assert resumed["rolling_digest"] == summary["rolling_digest"]
        assert resumed["events_processed"] == summary["events_processed"]
        assert resumed["probe_deliveries"] == summary["probe_deliveries"]

    def test_resume_rejects_config_override(self, tmp_path):
        config = SoakConfig(seed=5, horizon_ns=1500 * MS)
        _, _, written = run_soak(config, checkpoint_dir=tmp_path)
        with pytest.raises(ValueError, match="resume"):
            run_soak(config, resume=written[0][1])

    def test_checkpoint_pruning_keeps_last_n(self, tmp_path):
        config = SoakConfig(seed=5, horizon_ns=2000 * MS)
        _, _, written = run_soak(config, checkpoint_dir=tmp_path, keep=2)
        assert len(written) == 2
        on_disk = sorted(tmp_path.glob("*.ckpt"))
        assert on_disk == sorted(path for _, path in written)


@pytest.mark.slow
class TestSoakCheckGate:
    def test_soak_check_quick_passes(self, capsys):
        """Tier-1 gate: the quick soak profile reruns deterministically
        against the recorded BENCH_soak.json baseline."""
        from repro.checkpoint.soak import main as soak_main

        exit_code = soak_main(["--check", "--quick"])
        output = capsys.readouterr().out
        assert exit_code == 0, f"soak --check --quick failed:\n{output}"
        assert "soak check passed" in output


@pytest.mark.slow
class TestFleetMidRecoveryCheckpoint:
    """A composed fleet — islands, pooled standbys, cohort population —
    checkpoints mid-recovery and replays bit-identically (DESIGN.md §14)."""

    CAPTURE_NS = 60 * MS + 200_000  # after the crash, before the commit
    END_NS = 150 * MS

    def _build(self):
        harness = build_fleet(
            FleetConfig(
                seed=21,
                num_cells=3,
                standby_pool_size=1,
                users_per_cell=200,
                rewarm_ns=30 * MS,
            )
        )
        # Two crashes against one token: the second lands after capture,
        # so the restored run must replay a promotion *and* an exhaustion.
        for cell_index, at_ns in ((0, 60 * MS), (1, 75 * MS)):
            plan = FaultPlan(
                name=f"ckpt-fleet-cell{cell_index}",
                process_faults=(
                    ProcessFaultSpec(phy_id=0, kind="crash", at_ns=at_ns),
                ),
            )
            FaultInjector(harness.cells[cell_index], plan).arm()
        return harness

    def test_fleet_restores_mid_recovery_digest_identically(self):
        harness = self._build()
        harness.run_until(self.CAPTURE_NS)
        checkpoint = Checkpoint.capture(harness, label="fleet mid-recovery")
        assert checkpoint.meta.sim_now_ns == self.CAPTURE_NS
        assert checkpoint.meta.classes.get("repro.fleet.pool.StandbyPool") == 1

        harness.run_until(self.END_NS)
        continued_digest = fleet_digest(harness)
        assert harness.pool.promotions == 1
        assert harness.pool.exhaustions == 1

        restored = checkpoint.restore()
        assert restored.sim.now == self.CAPTURE_NS
        restored.run_until(self.END_NS)
        assert fleet_digest(restored) == continued_digest
        assert restored.pool.stats_dict() == harness.pool.stats_dict()
        assert restored.population.summary() == harness.population.summary()
        for cell, twin in zip(harness.cells, restored.cells):
            assert twin.trace.digest() == cell.trace.digest()

    def test_fleet_checkpoint_save_load_round_trip(self, tmp_path):
        harness = self._build()
        harness.run_until(self.CAPTURE_NS)
        checkpoint = Checkpoint.capture(harness, label="fleet disk")
        path = tmp_path / "fleet.ckpt"
        checkpoint.save(path)
        harness.run_until(self.END_NS)

        restored = Checkpoint.load(path).restore()
        restored.run_until(self.END_NS)
        assert fleet_digest(restored) == fleet_digest(harness)


class TestSoakStatePicklability:
    def test_soak_state_round_trips_through_pickle(self):
        """The whole runtime graph is closure-free: a fresh soak state
        pickles and unpickles without a registry in the loop."""
        from repro.faults.soak import build_soak_state, drive_soak_to

        state = build_soak_state(SoakConfig(seed=7, horizon_ns=1500 * MS))
        drive_soak_to(state, 350 * MS)
        clone = pickle.loads(pickle.dumps(state))
        drive_soak_to(state, 700 * MS)
        drive_soak_to(clone, 700 * MS)
        assert clone.cell.trace.rolling_digest() == (
            state.cell.trace.rolling_digest()
        )
        assert clone.monitor.max_gap_ns == state.monitor.max_gap_ns
