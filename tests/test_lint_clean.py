"""Tier-1 gate: the tree lints clean, and the P4 verifier reproduces the
paper's §8.6 switch-resource budget check for the 256-RU configuration."""

from pathlib import Path

import pytest

from repro import cli
from repro.analysis import format_findings, lint_paths, lint_source
from repro.analysis.p4budget import (
    MAX_REGISTER_ACCESSES_PER_PASS,
    MAX_TABLES_PER_PIPELINE,
    resource_report,
    summarize_program,
)

import ast

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE = REPO_ROOT / "src" / "repro"


class TestTreeIsClean:
    def test_package_lints_clean(self):
        findings = lint_paths([PACKAGE])
        assert findings == [], "\n" + format_findings(findings)

    def test_cli_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nstart = time.time()\n")
        assert cli.main(["lint", str(dirty)]) == 1
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert cli.main(["lint", str(clean)]) == 0
        capsys.readouterr()

    def test_cli_reports_finding_location(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert cli.main(["lint", str(dirty), "--format", "json"]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out and "dirty.py" in out


class TestSection86BudgetCheck:
    """Static reproduction of the paper's Table in §8.6."""

    def test_fh_middlebox_fits_at_256_rus(self):
        source = (PACKAGE / "core" / "fh_middlebox.py").read_text()
        findings = lint_source(
            source,
            path="src/repro/core/fh_middlebox.py",
            num_rus=256,
            num_phys=256,
        )
        assert findings == [], "\n" + format_findings(findings)

    def test_paper_percentages_at_256(self):
        report = resource_report(num_rus=256, num_phys=256)
        expected = {
            "crossbar": 5.2,
            "alu": 10.4,
            "gateway": 14.1,
            "sram_bits": 5.3,
            "hash_bits": 9.5,
        }
        for resource, percent in expected.items():
            assert report[resource] == pytest.approx(percent, abs=0.1)
            assert report[resource] < 100.0

    def test_recovered_program_shape(self):
        source = (PACKAGE / "core" / "fh_middlebox.py").read_text()
        summary = summarize_program(ast.parse(source), 256, 256)
        assert set(summary.tables) == {
            "ru_id_directory",
            "phy_id_directory",
            "phy_address_directory",
            "ru_port_directory",
        }
        assert len(summary.tables) <= MAX_TABLES_PER_PIPELINE
        assert set(summary.registers) == {
            "ru_to_phy",
            "mig_valid",
            "mig_slot",
            "mig_dest",
            "prev_phy",
            "last_boundary",
        }
        # Directory/register sizing resolves to the verification scale.
        assert summary.tables["ru_id_directory"] == 256
        assert summary.registers["ru_to_phy"] == 256
        for register in summary.registers:
            assert summary.max_accesses(register) <= MAX_REGISTER_ACCESSES_PER_PASS

    def test_budget_fails_beyond_sram_capacity(self):
        source = (PACKAGE / "core" / "fh_middlebox.py").read_text()
        findings = lint_source(
            source,
            path="src/repro/core/fh_middlebox.py",
            num_rus=6000,
            num_phys=6000,
        )
        assert any(f.rule_id == "P4R001" for f in findings)
