"""Tier-1 gate: the tree lints clean (including the suppression audit
and the whole-program rules), the lint pass stays inside its wall-time
budget, and the P4 verifier reproduces the paper's §8.6 switch-resource
budget check for the 256-RU configuration."""

import json
from pathlib import Path

import pytest

from repro import cli
from repro.analysis import format_findings, lint_paths, lint_source
from repro.analysis.p4budget import (
    MAX_REGISTER_ACCESSES_PER_PASS,
    MAX_TABLES_PER_PIPELINE,
    resource_report,
    summarize_program,
)

import ast

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE = REPO_ROOT / "src" / "repro"


class TestTreeIsClean:
    def test_package_lints_clean(self):
        findings = lint_paths([PACKAGE])
        assert findings == [], "\n" + format_findings(findings)

    def test_cli_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nstart = time.time()\n")
        assert cli.main(["lint", str(dirty)]) == 1
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert cli.main(["lint", str(clean)]) == 0
        capsys.readouterr()

    def test_cli_reports_finding_location(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert cli.main(["lint", str(dirty), "--format", "json"]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out and "dirty.py" in out


class TestLintSmoke:
    """The analyzer's own health: suppression audit, runtime budget,
    committed benchmark record, and (when available) strict typing."""

    def test_strict_suppressions_clean(self):
        findings = lint_paths([PACKAGE], strict_suppressions=True)
        assert findings == [], "\n" + format_findings(findings)

    def test_lint_wall_time_within_budget(self, tmp_path, capsys):
        from repro.analysis.runner import LINT_BUDGET_SECONDS, main

        bench = tmp_path / "bench.json"
        code = main(
            [str(PACKAGE), "--strict-suppressions", "--bench", str(bench)]
        )
        capsys.readouterr()
        assert code == 0
        record = json.loads(bench.read_text())[-1]
        assert record["benchmark"] == "slinglint"
        assert record["findings"] == 0
        assert record["budget_seconds"] == LINT_BUDGET_SECONDS
        assert record["wall_seconds"] <= LINT_BUDGET_SECONDS, (
            f"lint pass took {record['wall_seconds']}s, budget is "
            f"{LINT_BUDGET_SECONDS}s — the analyzer has regressed"
        )

    def test_committed_bench_record(self):
        committed = json.loads(
            (REPO_ROOT / "benchmarks" / "BENCH_lint.json").read_text()
        )
        last = committed[-1]
        assert last["benchmark"] == "slinglint"
        assert last["findings"] == 0
        assert last["wall_seconds"] <= last["budget_seconds"]

    def test_mypy_strict_on_analysis_package(self):
        """Gated on availability: the container may not ship mypy."""
        api = pytest.importorskip("mypy.api")
        out, err, code = api.run(
            ["--strict", "--no-error-summary", str(PACKAGE / "analysis")]
        )
        assert code == 0, out or err


@pytest.mark.slow
class TestStreamSanitizer:
    def test_golden_run_has_zero_divergence(self):
        """Every stream drawn during the golden digest scenarios must map
        to a static site the STREAM rules audited (ISSUE acceptance)."""
        from repro.analysis.runner import lint_report
        from repro.analysis.sanitize import run_sanitizer

        report = lint_report([PACKAGE])
        result = run_sanitizer(report.program)
        assert result.divergences == [], result.summary()
        assert len(result.draws) >= 10
        assert result.covered_sites >= 5


class TestSection86BudgetCheck:
    """Static reproduction of the paper's Table in §8.6."""

    def test_fh_middlebox_fits_at_256_rus(self):
        source = (PACKAGE / "core" / "fh_middlebox.py").read_text()
        findings = lint_source(
            source,
            path="src/repro/core/fh_middlebox.py",
            num_rus=256,
            num_phys=256,
        )
        assert findings == [], "\n" + format_findings(findings)

    def test_paper_percentages_at_256(self):
        report = resource_report(num_rus=256, num_phys=256)
        expected = {
            "crossbar": 5.2,
            "alu": 10.4,
            "gateway": 14.1,
            "sram_bits": 5.3,
            "hash_bits": 9.5,
        }
        for resource, percent in expected.items():
            assert report[resource] == pytest.approx(percent, abs=0.1)
            assert report[resource] < 100.0

    def test_recovered_program_shape(self):
        source = (PACKAGE / "core" / "fh_middlebox.py").read_text()
        summary = summarize_program(ast.parse(source), 256, 256)
        assert set(summary.tables) == {
            "ru_id_directory",
            "phy_id_directory",
            "phy_address_directory",
            "ru_port_directory",
        }
        assert len(summary.tables) <= MAX_TABLES_PER_PIPELINE
        assert set(summary.registers) == {
            "ru_to_phy",
            "mig_valid",
            "mig_slot",
            "mig_dest",
            "prev_phy",
            "last_boundary",
        }
        # Directory/register sizing resolves to the verification scale.
        assert summary.tables["ru_id_directory"] == 256
        assert summary.registers["ru_to_phy"] == 256
        for register in summary.registers:
            assert summary.max_accesses(register) <= MAX_REGISTER_ACCESSES_PER_PASS

    def test_budget_fails_beyond_sram_capacity(self):
        source = (PACKAGE / "core" / "fh_middlebox.py").read_text()
        findings = lint_source(
            source,
            path="src/repro/core/fh_middlebox.py",
            num_rus=6000,
            num_phys=6000,
        )
        assert any(f.rule_id == "P4R001" for f in findings)
