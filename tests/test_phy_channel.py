"""Tests for the wireless channel models."""

import numpy as np
import pytest

from repro.phy.channel import (
    AwgnChannel,
    ChannelRealization,
    UeChannelModel,
    snr_db_to_noise_var,
)


class TestAwgn:
    def test_noise_variance_matches_snr(self):
        rng = np.random.default_rng(0)
        channel = AwgnChannel(rng)
        symbols = np.ones(50_000, dtype=np.complex128)
        realization = ChannelRealization(snr_db=10.0)
        received = channel.apply(symbols, realization)
        measured_var = float(np.var(received - symbols))
        assert measured_var == pytest.approx(snr_db_to_noise_var(10.0), rel=0.05)

    def test_zero_db_means_unit_noise(self):
        assert snr_db_to_noise_var(0.0) == pytest.approx(1.0)

    def test_garbage_is_zero_mean_unit_power(self):
        rng = np.random.default_rng(1)
        channel = AwgnChannel(rng)
        garbage = channel.garbage(50_000)
        assert float(np.mean(garbage.real)) == pytest.approx(0.0, abs=0.02)
        assert float(np.mean(np.abs(garbage) ** 2)) == pytest.approx(1.0, rel=0.05)

    def test_realization_noise_var_property(self):
        assert ChannelRealization(20.0).noise_var == pytest.approx(0.01)


class TestUeChannelModel:
    def test_same_slot_same_realization(self):
        model = UeChannelModel(np.random.default_rng(0), mean_snr_db=15.0)
        a = model.snr_for_slot(100)
        b = model.snr_for_slot(100)
        assert a.snr_db == b.snr_db

    def test_mean_tracks_configured_snr(self):
        model = UeChannelModel(
            np.random.default_rng(1), mean_snr_db=18.0, fade_probability=0.0
        )
        samples = [model.snr_for_slot(slot).snr_db for slot in range(0, 20_000, 5)]
        assert float(np.mean(samples)) == pytest.approx(18.0, abs=0.8)

    def test_shadowing_varies_over_time(self):
        model = UeChannelModel(np.random.default_rng(2), mean_snr_db=15.0)
        samples = {model.snr_for_slot(slot).snr_db for slot in range(0, 5000, 50)}
        assert len(samples) > 10

    def test_fades_reduce_snr(self):
        model = UeChannelModel(
            np.random.default_rng(3),
            mean_snr_db=15.0,
            shadow_sigma_db=0.0,
            fade_probability=1.0,
            fade_depth_db=6.0,
            fade_duration_slots=5,
        )
        model.snr_for_slot(0)
        faded = model.snr_for_slot(1)
        assert faded.snr_db == pytest.approx(9.0, abs=0.1)

    def test_invalid_correlation_rejected(self):
        with pytest.raises(ValueError):
            UeChannelModel(np.random.default_rng(0), correlation=1.5)

    def test_distinct_rngs_give_distinct_channels(self):
        a = UeChannelModel(np.random.default_rng(10), mean_snr_db=15.0)
        b = UeChannelModel(np.random.default_rng(11), mean_snr_db=15.0)
        sa = [a.snr_for_slot(s).snr_db for s in range(0, 1000, 100)]
        sb = [b.snr_for_slot(s).snr_db for s in range(0, 1000, 100)]
        assert sa != sb
