"""Cross-layer property tests on the invariants the design relies on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commands import MigrateOnSlot
from repro.core.fh_middlebox import FronthaulMiddlebox
from repro.net.addresses import MacAddress
from repro.net.packet import EtherType, EthernetFrame
from repro.net.switch import Switch
from repro.sim.engine import Simulator
from repro.sim.units import MS
from repro.transport.packet import FlowDirection
from repro.transport.tcp import TcpReceiver, TcpSender


class TestSimulatorProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                    max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_schedules_fire_in_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
        sim.run()
        times = [t for t, _ in fired]
        assert times == sorted(times)
        assert len(fired) == len(delays)
        for fire_time, delay in fired:
            assert fire_time == delay

    @given(st.lists(st.tuples(st.integers(0, 5_000), st.booleans()),
                    min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_cancellation_never_fires(self, entries):
        sim = Simulator()
        fired = []
        handles = []
        for delay, cancel in entries:
            handle = sim.schedule(delay, lambda i=len(handles): fired.append(i))
            handles.append((handle, cancel))
        for handle, cancel in handles:
            if cancel:
                handle.cancel()
        sim.run()
        expected = [i for i, (_, cancel) in enumerate(handles) if not cancel]
        assert sorted(fired) == expected


class TestMiddleboxSteeringProperty:
    @given(
        boundary=st.integers(min_value=10, max_value=500),
        packet_slots=st.lists(st.integers(0, 600), min_size=1, max_size=60),
    )
    @settings(max_examples=50, deadline=None)
    def test_slot_partition_is_exact_for_any_arrival_order(
        self, boundary, packet_slots
    ):
        """For every arrival order, packets with slot < boundary resolve
        to the old PHY and slot >= boundary to the new — the contract
        the RU's protocol compliance depends on."""
        sim = Simulator()
        switch = Switch(sim, pipeline_latency_ns=0)
        mbox = FronthaulMiddlebox(sim)
        mbox.install_on(switch)
        mbox.register_ru(0, MacAddress(0x10), 0, initial_phy=0)
        mbox.register_phy(0, MacAddress(0x20), 1)
        mbox.register_phy(1, MacAddress(0x21), 2)
        mbox.mig_dest.write(0, 1)
        mbox.mig_slot.write(0, boundary)
        mbox.mig_valid.write(0, 1)
        for slot in packet_slots:
            mbox._maybe_commit_migration(0, slot)
            effective = mbox._effective_phy(0, slot)
            assert effective == (1 if slot >= boundary else 0), (
                f"slot {slot} boundary {boundary}"
            )


class TestTcpEndToEndProperty:
    @given(
        seed=st.integers(0, 2**31 - 1),
        loss_points=st.lists(st.integers(5, 60), max_size=6),
        reorder_ms=st.integers(0, 8),
    )
    @settings(max_examples=8, deadline=None)
    def test_delivery_is_exactly_in_order_and_gapless(
        self, seed, loss_points, reorder_ms
    ):
        """Under arbitrary loss bursts and bounded reordering, the
        receiver application sees a gapless, in-order byte stream."""
        sim = Simulator()
        rng = np.random.default_rng(seed)
        drop_at = {p * 1200 * 3 for p in loss_points}

        receiver_box = {}

        def to_receiver(packet):
            segment = packet.payload
            if segment.seq in drop_at:
                drop_at.discard(segment.seq)
                return
            jitter = int(rng.integers(0, reorder_ms + 1)) * MS
            sim.schedule(3 * MS + jitter, receiver_box["rx"].on_segment, segment)

        def to_sender(packet):
            sim.schedule(3 * MS, receiver_box["tx"].on_ack, packet.payload)

        sender = TcpSender(
            sim, "f", 1, 1, FlowDirection.UPLINK, transmit=to_receiver
        )
        receiver = TcpReceiver(
            sim, "f", 1, 1, FlowDirection.DOWNLINK, transmit_ack=to_sender
        )
        receiver_box["rx"] = receiver
        receiver_box["tx"] = sender
        # Keep the flow small so hypothesis examples stay cheap.
        sender.config.receive_window_segments = 120
        sender.start()
        sim.run_until(450 * MS)
        sender.stop()
        # In-order gapless delivery: delivered == rcv_nxt and it covers
        # a contiguous prefix of the sent stream.
        assert receiver.bytes_delivered == receiver.rcv_nxt
        assert receiver.bytes_delivered > 0
        assert receiver.rcv_nxt <= sender.snd_nxt

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_progress_under_random_light_loss(self, seed):
        """1 % random loss must never deadlock the connection."""
        sim = Simulator()
        rng = np.random.default_rng(seed)
        box = {}

        def to_receiver(packet):
            if rng.random() < 0.01:
                return
            sim.schedule(4 * MS, box["rx"].on_segment, packet.payload)

        def to_sender(packet):
            sim.schedule(4 * MS, box["tx"].on_ack, packet.payload)

        sender = TcpSender(sim, "f", 1, 1, FlowDirection.UPLINK, to_receiver)
        receiver = TcpReceiver(sim, "f", 1, 1, FlowDirection.DOWNLINK, to_sender)
        box["rx"], box["tx"] = receiver, sender
        sender.config.receive_window_segments = 120
        sender.start()
        sim.run_until(300 * MS)
        first = receiver.bytes_delivered
        sim.run_until(900 * MS)
        assert receiver.bytes_delivered > first  # Still making progress.


class TestHarqTbidProperty:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_mac_never_reuses_live_tb_ids_or_harq_processes(self, seed):
        """Scheduler invariant: at any instant, no two outstanding DL TBs
        of a UE share a HARQ process, and all live tb_ids are unique."""
        from repro.cell.config import CellConfig, UeProfile
        from repro.cell.deployment import build_slingshot_cell
        from repro.sim.units import s_to_ns

        config = CellConfig(
            seed=seed % 1000,
            ue_profiles=[UeProfile(ue_id=1, name="UE", mean_snr_db=15.0)],
        )
        cell = build_slingshot_cell(config)
        from repro.apps.iperf import UdpIperfDownlink

        flow = UdpIperfDownlink(
            cell.sim, cell.server, cell.ue(1), "f", 1, bitrate_bps=30e6
        )
        cell.run_for(s_to_ns(0.2))
        flow.start()
        for _ in range(10):
            cell.run_for(s_to_ns(0.03))
            ctx = cell.l2.ues.get(1)
            if ctx is None:
                continue
            tb_ids = [o.pdu.tb_id for o in ctx.dl_outstanding.values()]
            assert len(tb_ids) == len(set(tb_ids))
            # Keys of dl_outstanding *are* the HARQ processes: unique by
            # construction; also bounded by the configured pool.
            assert all(
                0 <= pid < cell.l2.config.dl_harq_processes
                for pid in ctx.dl_outstanding
            )
